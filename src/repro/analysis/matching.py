"""Cross-city POI matching — the concrete payoff of Fig. 1a.

Given a POI in a source city ("the Golden Gate Bridge viewpoint"), what
is its counterpart in the target city ("the Hollywood Sign overlook")?
After transfer learning, nearest neighbours *across* cities in embedding
space answer that — this module exposes the query and reports word
overlap so matches are inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.embedding import EmbeddingSpace
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CrossCityMatch:
    """One cross-city nearest-neighbour pair."""

    source_poi_id: int
    target_poi_id: int
    cosine: float
    shared_words: Tuple[str, ...]
    same_topic: Optional[bool]


def match_pois_across_cities(space: EmbeddingSpace, source_city: str,
                             target_city: str, poi_ids: Sequence[int] = None,
                             top_k: int = 1) -> List[CrossCityMatch]:
    """Nearest target-city neighbour(s) for source-city POIs.

    Parameters
    ----------
    space:
        Trained embedding space.
    poi_ids:
        Source POIs to match (default: all of the source city).
    top_k:
        Matches returned per source POI, best first.

    Returns
    -------
    Matches ordered by (source poi, descending cosine).  ``same_topic``
    is filled when both POIs carry generator topic labels, else None.
    """
    check_positive("top_k", top_k)
    normalized = space.normalized()
    target_block, target_ids = space.rows_for_city(target_city)
    target_rows = np.array(
        [space.index.pois.index_of(i) for i in target_ids]
    )
    target_matrix = normalized[target_rows]

    if poi_ids is None:
        _, poi_ids = space.rows_for_city(source_city)
    matches: List[CrossCityMatch] = []
    for poi_id in poi_ids:
        source_poi = space.dataset.pois[int(poi_id)]
        if source_poi.city != source_city:
            raise ValueError(
                f"POI {poi_id} is in {source_poi.city!r}, "
                f"not {source_city!r}"
            )
        vector = normalized[space.index.pois.index_of(int(poi_id))]
        sims = target_matrix @ vector
        order = np.argsort(-sims)[:top_k]
        for rank in order:
            target_poi = space.dataset.pois[target_ids[int(rank)]]
            shared = tuple(sorted(set(source_poi.words)
                                  & set(target_poi.words)))
            same_topic: Optional[bool] = None
            if source_poi.topic >= 0 and target_poi.topic >= 0:
                same_topic = source_poi.topic == target_poi.topic
            matches.append(CrossCityMatch(
                source_poi_id=int(poi_id),
                target_poi_id=target_poi.poi_id,
                cosine=float(sims[int(rank)]),
                shared_words=shared,
                same_topic=same_topic,
            ))
    return matches


def topic_match_rate(matches: Sequence[CrossCityMatch]) -> float:
    """Fraction of matches whose POIs share the latent topic.

    Only defined over matches with topic labels; raises if none have
    them (real data).
    """
    labelled = [m for m in matches if m.same_topic is not None]
    if not labelled:
        raise ValueError("no topic-labelled matches")
    return sum(1 for m in labelled if m.same_topic) / len(labelled)
