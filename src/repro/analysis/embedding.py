"""Embedding-space diagnostics for trained models.

Answers the questions the paper's Fig. 1a poses about city-independent
features: after training, do POIs with the same semantics sit together
*across* cities?  Has the MMD layer actually closed the distribution
gap?  These diagnostics power the transfer-visualization example and
the library's own regression tests on transfer quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import CheckinDataset
from repro.data.vocabulary import DatasetIndex
from repro.transfer.kernels import GaussianKernel, median_heuristic_bandwidth
from repro.transfer.mmd import mmd_quadratic


@dataclass
class EmbeddingSpace:
    """A trained POI embedding table with its dataset context.

    Attributes
    ----------
    vectors:
        ``(num_pois, d)`` embedding matrix, in index order.
    index:
        The entity index mapping POI ids to rows.
    dataset:
        The dataset the model was trained on (for cities and words).
    """

    vectors: np.ndarray
    index: DatasetIndex
    dataset: CheckinDataset

    def __post_init__(self) -> None:
        if self.vectors.shape[0] != self.index.num_pois:
            raise ValueError(
                f"vector count {self.vectors.shape[0]} != indexed POIs "
                f"{self.index.num_pois}"
            )

    def vector_of(self, poi_id: int) -> np.ndarray:
        """Embedding row for a dataset POI id."""
        return self.vectors[self.index.pois.index_of(poi_id)]

    def rows_for_city(self, city: str) -> Tuple[np.ndarray, List[int]]:
        """(embedding block, poi ids) for one city."""
        pois = self.dataset.pois_in_city(city)
        if not pois:
            raise ValueError(f"no POIs in city {city!r}")
        ids = [p.poi_id for p in pois]
        rows = np.array([self.index.pois.index_of(i) for i in ids])
        return self.vectors[rows], ids

    def normalized(self) -> np.ndarray:
        """Unit-norm copy of the embedding matrix."""
        norms = np.linalg.norm(self.vectors, axis=1, keepdims=True)
        return self.vectors / np.maximum(norms, 1e-12)


@dataclass(frozen=True)
class CrossCityAlignment:
    """Topic-alignment summary between two cities.

    ``same_topic_cosine`` is the mean cosine between same-topic centroid
    pairs across the two cities; ``different_topic_cosine`` between
    different-topic pairs.  The ``margin`` (same − different) measures
    how well city-independent features survived training: near zero
    means topics are entangled with city identity.
    """

    city_a: str
    city_b: str
    same_topic_cosine: float
    different_topic_cosine: float
    topics_compared: int

    @property
    def margin(self) -> float:
        return self.same_topic_cosine - self.different_topic_cosine


def cross_city_alignment(space: EmbeddingSpace, city_a: str,
                         city_b: str) -> CrossCityAlignment:
    """Topic-centroid alignment between two cities.

    Requires POIs to carry topic labels (the synthetic generator sets
    them; real data has ``topic = -1`` and raises).
    """
    normalized = space.normalized()
    centroids: Dict[Tuple[str, int], np.ndarray] = {}
    buckets: Dict[Tuple[str, int], List[int]] = {}
    for city in (city_a, city_b):
        for poi in space.dataset.pois_in_city(city):
            if poi.topic < 0:
                raise ValueError(
                    "cross_city_alignment needs topic labels "
                    "(synthetic datasets only)"
                )
            row = space.index.pois.index_of(poi.poi_id)
            buckets.setdefault((city, poi.topic), []).append(row)
    for key, rows in buckets.items():
        centroids[key] = normalized[rows].mean(axis=0)

    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

    topics_a = {t for c, t in centroids if c == city_a}
    topics_b = {t for c, t in centroids if c == city_b}
    shared = sorted(topics_a & topics_b)
    if not shared:
        raise ValueError("no shared topics between the two cities")

    same = [cosine(centroids[(city_a, t)], centroids[(city_b, t)])
            for t in shared]
    different = [
        cosine(centroids[(city_a, t)], centroids[(city_b, other)])
        for t in shared for other in shared if other != t
    ]
    return CrossCityAlignment(
        city_a=city_a,
        city_b=city_b,
        same_topic_cosine=float(np.mean(same)),
        different_topic_cosine=float(np.mean(different)) if different
        else 0.0,
        topics_compared=len(shared),
    )


def embedding_mmd(space: EmbeddingSpace, city_a: str, city_b: str,
                  sample_size: int = 256, bandwidth: Optional[float] = None,
                  seed: int = 0) -> float:
    """MMD² between two cities' POI embedding distributions.

    POIs are sampled uniformly per city (not by check-ins), measuring
    the *catalogue* gap the transfer layer is asked to close.
    """
    rng = np.random.default_rng(seed)
    block_a, _ = space.rows_for_city(city_a)
    block_b, _ = space.rows_for_city(city_b)
    take_a = block_a[rng.integers(0, len(block_a), size=min(sample_size,
                                                            len(block_a)))]
    take_b = block_b[rng.integers(0, len(block_b), size=min(sample_size,
                                                            len(block_b)))]
    if bandwidth is None:
        bandwidth = median_heuristic_bandwidth(take_a, take_b)
    kernel = GaussianKernel(bandwidth)
    return float(mmd_quadratic(take_a, take_b, kernel).item())
