"""``repro.analysis`` — embedding diagnostics and cross-city matching."""

from repro.analysis.embedding import (
    CrossCityAlignment,
    EmbeddingSpace,
    cross_city_alignment,
    embedding_mmd,
)
from repro.analysis.matching import CrossCityMatch, match_pois_across_cities

__all__ = [
    "EmbeddingSpace",
    "CrossCityAlignment",
    "cross_city_alignment",
    "embedding_mmd",
    "CrossCityMatch",
    "match_pois_across_cities",
]
