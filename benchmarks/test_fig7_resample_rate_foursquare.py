"""Figure 7 — resampling rate α sweep on Foursquare (Los Angeles).

Paper: performance at k ∈ {2, 6, 10} peaks near α = 0.10 over the sweep
α ∈ [0.06, 0.15]; both disabling resampling and over-resampling hurt.

Shape asserted: some interior α beats α = 0 (resampling helps) and the
peak is not at the largest α (over-resampling saturates or hurts).
"""

from repro.eval.experiment import run_resample_sweep
from repro.eval.reporting import format_sweep

ALPHAS = (0.0, 0.06, 0.10, 0.15, 0.5)


def test_fig7_resample_rate_foursquare(benchmark, foursquare_context,
                                       results_sink):
    results = benchmark.pedantic(
        lambda: run_resample_sweep(foursquare_context, alphas=ALPHAS),
        rounds=1, iterations=1,
    )
    results_sink("fig7_resample_rate_foursquare",
                 format_sweep(results, "alpha"))

    recall = {alpha: results[alpha]["recall"][10] for alpha in ALPHAS}
    interior = {a: r for a, r in recall.items() if 0.0 < a <= 0.15}
    # Resampling deltas are small (the paper's ablation puts it at ~1.8%),
    # so allow noise-level tolerance on the α=0 comparison.
    assert max(interior.values()) >= recall[0.0] - 0.01, (
        "a moderate resampling rate should not lose to no resampling"
    )
    assert recall[0.5] <= max(interior.values()) + 0.01, (
        "extreme resampling should not beat the moderate band"
    )
