"""Table 3 — case study: one user's top words and two rank lists.

Paper: for user #377 the full model's top-5 POIs (ArcLight Cinemas,
Downtown LA ArtWalk, ...) textually match the user's source-city top
words (scenic views, tours, music ...), while ST-TransRec-2 (no text)
surfaces mismatches like LAX airport and a Thai restaurant.

Shape asserted: the full model's top-5 descriptions overlap the user's
preferred *shared* vocabulary at least as much as the no-text variant's.
"""

import dataclasses

from repro.baselines.st_transrec_method import STTransRecMethod
from repro.eval.case_study import build_case_study
from repro.eval.experiment import BENCH_SEEDS


def _fit_pair(context):
    profile = dataclasses.replace(context.profile, seed=BENCH_SEEDS[0])
    full = STTransRecMethod(profile.st_transrec_config())
    full.fit(context.split)
    no_text = STTransRecMethod(profile.st_transrec_config(),
                               variant="ST-TransRec-2")
    no_text.fit(context.split)
    return {
        "ST-TransRec": full.recommender,
        "ST-TransRec-2": no_text.recommender,
    }


def _shared_word_overlap(case_study, model_name):
    """How many top-list description words are shared-vocabulary words
    also present in the user's profile words."""
    profile_words = set(case_study.top_words)
    hits = 0
    for row in case_study.rank_lists[model_name]:
        hits += sum(1 for w in row.words
                    if w in profile_words and w.startswith("topic"))
    return hits


def test_table3_case_study(benchmark, foursquare_context, results_sink):
    recommenders = benchmark.pedantic(
        lambda: _fit_pair(foursquare_context), rounds=1, iterations=1,
    )
    study = build_case_study(foursquare_context.split, recommenders,
                             top_k=5, top_words=10)
    results_sink("table3_case_study", study.format())

    assert set(study.rank_lists) == {"ST-TransRec", "ST-TransRec-2"}
    full_overlap = _shared_word_overlap(study, "ST-TransRec")
    no_text_overlap = _shared_word_overlap(study, "ST-TransRec-2")
    assert full_overlap >= no_text_overlap, (
        "textual model should match the user's shared vocabulary at "
        "least as well as the no-text variant"
    )
