"""Table 1 — statistics of the two datasets.

Paper (real data): Foursquare 3,600 users / 31,784 POIs / 3,619 words /
191,515 check-ins (732 crossing users, 3,520 crossing check-ins); Yelp
9,805 / 6,910 / 1,648 / 433,305 (983 / 6,137).  The synthetic presets
reproduce the *structure* — crossing check-ins a small fraction of the
total, more POIs than a user can cover — at CPU scale.
"""

from repro.data.split import make_crossing_city_split
from repro.data.stats import dataset_statistics
from repro.data.synthetic import generate_dataset


def _full_dataset_stats(context):
    """Table 1 describes the *full* collection, before the test split
    removes the crossing users' target-city check-ins — regenerate it."""
    dataset, _truth = generate_dataset(context.config)
    return dataset_statistics(dataset, context.target_city)


def _stats_text(context, stats):
    lines = [f"{label:<22}{value}" for label, value in stats.rows()]
    lines.append(f"{'Held-out test users':<22}{len(context.split.test_users)}")
    lines.append(
        f"{'Held-out check-ins':<22}{context.split.num_test_checkins}"
    )
    return "\n".join(lines)


def _check_shape(stats):
    # Crossing-city data is sparse relative to totals, as in the paper
    # (crossing check-ins ≈ 2% of Foursquare's total).
    assert stats.num_crossing_users > 0
    assert stats.num_crossing_users < stats.num_users / 2
    assert stats.num_crossing_checkins < stats.num_checkins / 10


def test_table1_foursquare(benchmark, foursquare_context, results_sink):
    stats = benchmark.pedantic(
        lambda: _full_dataset_stats(foursquare_context),
        rounds=1, iterations=1,
    )
    results_sink("table1_foursquare", _stats_text(foursquare_context, stats))
    _check_shape(stats)


def test_table1_yelp(benchmark, yelp_context, results_sink):
    stats = benchmark.pedantic(
        lambda: _full_dataset_stats(yelp_context),
        rounds=1, iterations=1,
    )
    results_sink("table1_yelp", _stats_text(yelp_context, stats))
    _check_shape(stats)
