#!/usr/bin/env python
"""CI regression gate for the hot-path benchmarks.

Compares a fresh ``BENCH_train.json`` / ``BENCH_serving.json`` pair
(produced by ``repro perf-bench``) against the committed baselines in
``benchmarks/perf/baselines.json``.  Only *ratio* metrics (speedups)
are gated — they transfer across machines far better than absolute
times.  Exits non-zero and prints one line per regression.

Usage (what CI runs)::

    PYTHONPATH=src python -m repro.cli perf-bench --tiny
    python benchmarks/perf/check_regression.py --profile tiny

The ``tiny`` profile gates only the microbenchmarks that are stable at
smoke scale; the ``full`` profile additionally gates the headline
2-worker train-step speedup (>= 1.5x after tolerance).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet.chaos import check_chaos_against_baseline  # noqa: E402
from repro.perf.bench import (  # noqa: E402
    check_against_baseline,
    check_backend_against_baseline,
    check_fleet_against_baseline,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=["tiny", "full"],
                        default="tiny",
                        help="baseline profile to gate against")
    parser.add_argument("--train", default="BENCH_train.json",
                        help="path to BENCH_train.json")
    parser.add_argument("--serving", default="BENCH_serving.json",
                        help="path to BENCH_serving.json")
    parser.add_argument("--baselines",
                        default=str(Path(__file__).with_name(
                            "baselines.json")),
                        help="committed baselines file")
    args = parser.parse_args(argv)

    baselines = json.loads(Path(args.baselines).read_text())
    profile = baselines[args.profile]

    regressions = []
    skipped = []
    gated = 0
    for name, path in (("train", args.train), ("serving", args.serving)):
        spec = profile.get(name)
        if spec is None:
            continue
        payload = json.loads(Path(path).read_text())
        regressions += [f"[{name}] {msg}"
                        for msg in check_against_baseline(payload, spec)]
        gated += len(spec.get("metrics", {}))

    # Backend, fleet scaling, and chaos resilience metrics gate
    # separately: each can be skipped (not failed) — their bars need
    # enough CPUs to be physically measurable, and chaos rows only
    # exist after `repro chaos-bench` has run.  The backend section
    # reads the train payload; fleet/chaos read the serving payload.
    train_payload = json.loads(Path(args.train).read_text())
    serving_payload = json.loads(Path(args.serving).read_text())
    for name, payload, checker in (
            ("backend", train_payload, check_backend_against_baseline),
            ("fleet", serving_payload, check_fleet_against_baseline),
            ("chaos", serving_payload, check_chaos_against_baseline)):
        spec = profile.get(name)
        if spec is None:
            continue
        section_regressions, skip_reason = checker(payload, spec)
        if skip_reason:
            skipped.append(skip_reason)
        else:
            gated += len(spec.get("metrics", {}))
        regressions += [f"[{name}] {msg}" for msg in section_regressions]

    if regressions:
        for msg in regressions:
            print(f"REGRESSION {msg}")
        return 1
    for reason in skipped:
        print(f"SKIPPED {reason}")
    print(f"perf gate ({args.profile}): {gated} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
