"""Statistical check of the headline result.

The paper reports ST-TransRec's ~39% Recall@10 improvement over ItemPop
on Foursquare as its largest margin.  This bench verifies that, on the
synthetic reproduction, the improvement survives user-level noise: a
paired bootstrap over per-user Recall@10 (identical candidate sets)
must find ST-TransRec significantly better than ItemPop.
"""

import dataclasses

from repro.baselines import make_method
from repro.baselines.st_transrec_method import STTransRecMethod
from repro.eval.significance import compare_methods


def test_st_transrec_beats_itempop_significantly(benchmark,
                                                 foursquare_context,
                                                 results_sink):
    context = foursquare_context

    def run():
        profile = dataclasses.replace(context.profile, seed=0)
        st = STTransRecMethod(profile.st_transrec_config())
        st.fit(context.split)
        pop = make_method("ItemPop", profile).fit(context.split)
        return compare_methods(context.evaluator, st, pop,
                               metric="recall", k=10, seed=0)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    results_sink("significance_headline", (
        f"ST-TransRec vs ItemPop, Recall@10, {comparison.num_users} "
        f"paired users\n"
        f"means: {comparison.mean_a:.4f} vs {comparison.mean_b:.4f} "
        f"(diff {comparison.mean_difference:+.4f})\n"
        f"bootstrap p = {comparison.bootstrap_p:.4f}, "
        f"sign test p = {comparison.sign_test_p:.4f}"
    ))
    assert comparison.mean_difference > 0
    assert comparison.significant(level=0.1), (
        "the headline improvement should survive user-level noise"
    )
