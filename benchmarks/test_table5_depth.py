"""Table 5 — recommendation performance vs number of hidden layers.

Paper: depth 4 is best on both datasets — stacking layers helps model
the user–POI interaction.  At the reproduction's reduced data scale deep
towers are harder to fit, so the asserted shape is weaker: the sweep
runs depths 1–4 with the paper's funnel widths, all depths must train to
a sane score, and the recorded table feeds EXPERIMENTS.md's
paper-vs-measured discussion.
"""

from repro.eval.experiment import run_depth_sweep
from repro.eval.reporting import format_hyper_table

DEPTHS = (1, 2, 3, 4)


def _check_sane(results):
    for depth in DEPTHS:
        recall = results[depth]["recall"][2]
        assert 0.0 <= recall <= 1.0
    # every depth produces a working model (clears a random-guess floor
    # of ~k/candidates ≈ 0.02 at k=2)
    assert min(results[d]["recall"][2] for d in DEPTHS) > 0.02


def test_table5_depth_foursquare(benchmark, foursquare_context,
                                 results_sink):
    results = benchmark.pedantic(
        lambda: run_depth_sweep(foursquare_context, depths=DEPTHS),
        rounds=1, iterations=1,
    )
    results_sink("table5_depth_foursquare",
                 format_hyper_table(results, "layers"))
    _check_sane(results)


def test_table5_depth_yelp(benchmark, yelp_context, results_sink):
    results = benchmark.pedantic(
        lambda: run_depth_sweep(yelp_context, depths=DEPTHS),
        rounds=1, iterations=1,
    )
    results_sink("table5_depth_yelp",
                 format_hyper_table(results, "layers"))
    _check_sane(results)
