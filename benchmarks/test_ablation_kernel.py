"""Design-choice ablation — MMD kernel: fixed Gaussian vs multi-bandwidth.

The paper uses a "Gaussian kernel with fixed bandwidth"; its MMD
reference (Long et al.'s joint adaptation networks) uses a geometric
multi-bandwidth mixture, which is more robust when embedding scales
shift during training.  This bench runs ST-TransRec with both and
records the comparison; the shape assertion is weak by design — both
kernels must land in the same quality band (the choice is not
load-bearing), which is itself the finding worth recording.
"""

import dataclasses

import numpy as np

from repro.baselines.st_transrec_method import STTransRecMethod

KERNELS = ("gaussian", "multi")


def _quality(context, kernel):
    scores = []
    for seed in (0, 1):
        profile = dataclasses.replace(context.profile, seed=seed)
        method = STTransRecMethod(
            profile.st_transrec_config(mmd_kernel=kernel)
        )
        method.fit(context.split)
        scores.append(
            context.evaluator.evaluate(method).scores["recall"][10]
        )
    return float(np.mean(scores))


def test_kernel_ablation(benchmark, foursquare_context, results_sink):
    quality = benchmark.pedantic(
        lambda: {kernel: _quality(foursquare_context, kernel)
                 for kernel in KERNELS},
        rounds=1, iterations=1,
    )
    lines = [f"{'kernel':<12}{'recall@10':<12}"]
    for kernel in KERNELS:
        lines.append(f"{kernel:<12}{quality[kernel]:<12.4f}")
    results_sink("ablation_kernel", "\n".join(lines))

    # Both kernels must produce working transfer (same band).
    assert min(quality.values()) > 0.7 * max(quality.values())
