"""Telemetry overhead: instrumented training must stay within 5%.

The observability contract is "pay only when attached": with
``telemetry=None`` every hook is a ``None`` check, and even with a live
:class:`~repro.obs.telemetry.Telemetry` the per-step cost is a handful
of histogram observes and span timestamps.  This benchmark trains the
same tiny world with and without telemetry (best-of-N wall time, like
``timeit``) and asserts the relative overhead stays under 5%.

The op profiler is *expected* to be expensive (it wraps every tensor
op) and is opt-in per run, so it is measured and reported here but not
held to the 5% bound.
"""

import time

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.core.trainer import STTransRecTrainer
from repro.data.split import make_crossing_city_split
from repro.data.synthetic import generate_dataset
from repro.fleet.router import ShardRouter
from repro.nn.profile import profile_ops
from repro.obs.slo import SloTracker, default_serving_slos
from repro.obs.telemetry import Telemetry
from repro.resilience import ResilienceConfig

from tests.conftest import tiny_config
from tests.test_core_trainer import fast_config

MAX_OVERHEAD = 0.05
ROUNDS = 7


def _epoch_seconds(split, telemetry):
    trainer = STTransRecTrainer(split, fast_config(), telemetry=telemetry)
    started = time.perf_counter()
    trainer.train_epoch()
    return time.perf_counter() - started


def test_telemetry_overhead_under_five_percent(results_sink):
    dataset, _truth = generate_dataset(tiny_config())
    split = make_crossing_city_split(dataset, "shelbyville")

    # Interleave the two variants so CPU-frequency drift and background
    # load hit both equally, then compare best-of-N (like ``timeit``,
    # the minimum is the least-perturbed observation of true cost).
    _epoch_seconds(split, None)                 # warmup: caches, imports
    baseline = instrumented = float("inf")
    for _ in range(ROUNDS):
        baseline = min(baseline, _epoch_seconds(split, None))
        instrumented = min(instrumented,
                           _epoch_seconds(split, Telemetry()))

    # The opt-in profiler, for the report only.
    trainer = STTransRecTrainer(split, fast_config())
    started = time.perf_counter()
    with profile_ops():
        trainer.train_epoch()
    profiled = time.perf_counter() - started

    overhead = instrumented / baseline - 1.0
    lines = [
        "telemetry overhead on one tiny train_epoch "
        f"(best of {ROUNDS})",
        f"  baseline (telemetry=None) : {baseline * 1000:8.2f} ms",
        f"  with Telemetry attached   : {instrumented * 1000:8.2f} ms"
        f"  ({overhead * 100:+.2f}%)",
        f"  with op profiler (opt-in) : {profiled * 1000:8.2f} ms"
        f"  ({(profiled / baseline - 1) * 100:+.1f}%, 1 round, "
        "not bounded)",
        f"  budget                    : {MAX_OVERHEAD * 100:.0f}%",
    ]
    results_sink("obs_overhead", "\n".join(lines))
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% "
        f"(baseline {baseline * 1000:.2f} ms, "
        f"instrumented {instrumented * 1000:.2f} ms)")


# ----------------------------------------------------------------------
# Request tracing on the serving fleet.

def _serving_world():
    """A production-shaped catalogue for per-request measurements.

    The tests' tiny world answers a request in ~0.5 ms — dominated by
    the pipe round trip, ~100x below any real serving request — so a
    fixed ~0.2 ms tracing cost would read as a huge *relative*
    overhead there while being irrelevant in practice.  This world
    gives the target city a few thousand POIs and a 64-dim model, so
    one request does representative scoring work (several ms) and the
    overhead ratio means what it says.
    """
    from repro.data.synthetic import CitySpec, SyntheticConfig

    config = SyntheticConfig(
        cities=[
            CitySpec("springfield", grid_shape=(8, 8), num_regions=4,
                     num_pois=800, num_local_users=40,
                     accessibility_skew=1.2, topic_tilt=0.8),
            CitySpec("shelbyville", grid_shape=(8, 8), num_regions=4,
                     num_pois=8000, num_local_users=32,
                     accessibility_skew=1.4, topic_tilt=0.5),
        ],
        target_city="shelbyville", num_topics=4,
        shared_words_per_topic=6, city_words_per_topic=3,
        num_generic_words=8, generic_fraction=0.15, words_per_poi=5,
        city_dependent_fraction=0.4, num_crossing_users=10,
        checkins_per_local_user=15, crossing_target_checkins=4,
        drift=0.25, trips_per_user=4, preference_concentration=0.25,
        seed=3)
    dataset, _truth = generate_dataset(config)
    index = dataset.build_index()
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       STTransRecConfig(embedding_dim=64, seed=3))
    model.eval()
    return model, index, dataset


def _serve_seconds(router, users):
    # One request per call: the serving arrival pattern.  A whole-batch
    # call would amortise its single fan-out round trip across every
    # user and understate the per-request baseline.
    started = time.perf_counter()
    for user in users:
        router.recommend_resilient([user], k=10)
    return time.perf_counter() - started


def test_tracing_overhead_under_five_percent(results_sink):
    """Per-request tracing + flight recorder + SLO feed stays under 5%.

    Two identical resilient fleets serve the same request stream — one
    with the full tracing stack (span emits, tail-sampling judgement,
    SLO recording), one plain.  Rounds interleave and compare
    best-of-N so scheduler noise hits both variants equally; a
    request's tracing cost is a fixed ~0.2 ms of span bookkeeping
    against several milliseconds of catalogue scoring, so 5% is a
    realistic ceiling.

    One shard, deliberately: on a single-core box a 2-shard fleet's
    "parallel" slices time-share the CPU, so every router wake-up
    preempts a scoring shard and the measurement becomes scheduler
    behaviour (proportional to catalogue size), not tracing cost.
    """
    model, index, dataset = _serving_world()
    users = sorted(dataset.users)[:16]
    generous = ResilienceConfig(
        deadline_ms=10_000.0, hop_timeout_ms=5_000.0,
        hedge_after_ms=2_000.0, poll_interval_ms=5.0)
    slo = SloTracker(default_serving_slos(10_000.0))
    target = "shelbyville"
    with ShardRouter(model, index, dataset, target, num_shards=1,
                     resilience=generous) as plain, \
         ShardRouter(model, index, dataset, target, num_shards=1,
                     resilience=generous, tracing=True,
                     slo=slo) as traced:
        _serve_seconds(plain, users)            # warmup both fleets
        _serve_seconds(traced, users)
        baseline = instrumented = float("inf")
        for _ in range(ROUNDS):
            baseline = min(baseline, _serve_seconds(plain, users))
            instrumented = min(instrumented, _serve_seconds(traced, users))
        stats = traced.trace_stats()

    overhead = instrumented / baseline - 1.0
    lines = [
        f"request-tracing overhead on the resilient serving path "
        f"(best of {ROUNDS}, {len(users)} single-user requests "
        f"per round)",
        f"  baseline (tracing off)    : {baseline * 1000:8.2f} ms",
        f"  tracing + flight + SLO    : {instrumented * 1000:8.2f} ms"
        f"  ({overhead * 100:+.2f}%)",
        f"  spans emitted             : {stats['recorder']['emitted']}",
        f"  requests judged           : {stats['flight']['seen']}",
        f"  budget                    : {MAX_OVERHEAD * 100:.0f}%",
    ]
    results_sink("obs_tracing_overhead", "\n".join(lines))
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% "
        f"(baseline {baseline * 1000:.2f} ms, "
        f"traced {instrumented * 1000:.2f} ms)")
