"""Telemetry overhead: instrumented training must stay within 5%.

The observability contract is "pay only when attached": with
``telemetry=None`` every hook is a ``None`` check, and even with a live
:class:`~repro.obs.telemetry.Telemetry` the per-step cost is a handful
of histogram observes and span timestamps.  This benchmark trains the
same tiny world with and without telemetry (best-of-N wall time, like
``timeit``) and asserts the relative overhead stays under 5%.

The op profiler is *expected* to be expensive (it wraps every tensor
op) and is opt-in per run, so it is measured and reported here but not
held to the 5% bound.
"""

import time

from repro.core.trainer import STTransRecTrainer
from repro.data.split import make_crossing_city_split
from repro.data.synthetic import generate_dataset
from repro.nn.profile import profile_ops
from repro.obs.telemetry import Telemetry

from tests.conftest import tiny_config
from tests.test_core_trainer import fast_config

MAX_OVERHEAD = 0.05
ROUNDS = 7


def _epoch_seconds(split, telemetry):
    trainer = STTransRecTrainer(split, fast_config(), telemetry=telemetry)
    started = time.perf_counter()
    trainer.train_epoch()
    return time.perf_counter() - started


def test_telemetry_overhead_under_five_percent(results_sink):
    dataset, _truth = generate_dataset(tiny_config())
    split = make_crossing_city_split(dataset, "shelbyville")

    # Interleave the two variants so CPU-frequency drift and background
    # load hit both equally, then compare best-of-N (like ``timeit``,
    # the minimum is the least-perturbed observation of true cost).
    _epoch_seconds(split, None)                 # warmup: caches, imports
    baseline = instrumented = float("inf")
    for _ in range(ROUNDS):
        baseline = min(baseline, _epoch_seconds(split, None))
        instrumented = min(instrumented,
                           _epoch_seconds(split, Telemetry()))

    # The opt-in profiler, for the report only.
    trainer = STTransRecTrainer(split, fast_config())
    started = time.perf_counter()
    with profile_ops():
        trainer.train_epoch()
    profiled = time.perf_counter() - started

    overhead = instrumented / baseline - 1.0
    lines = [
        "telemetry overhead on one tiny train_epoch "
        f"(best of {ROUNDS})",
        f"  baseline (telemetry=None) : {baseline * 1000:8.2f} ms",
        f"  with Telemetry attached   : {instrumented * 1000:8.2f} ms"
        f"  ({overhead * 100:+.2f}%)",
        f"  with op profiler (opt-in) : {profiled * 1000:8.2f} ms"
        f"  ({(profiled / baseline - 1) * 100:+.1f}%, 1 round, "
        "not bounded)",
        f"  budget                    : {MAX_OVERHEAD * 100:.0f}%",
    ]
    results_sink("obs_overhead", "\n".join(lines))
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% "
        f"(baseline {baseline * 1000:.2f} ms, "
        f"instrumented {instrumented * 1000:.2f} ms)")
