"""Design-choice ablation — transfer weight λ (Eq. 3).

The joint loss weights the MMD term by λ; the paper treats λ as a
hyper-parameter but reports no sweep.  This bench records one: λ = 0
reduces to ST-TransRec-1, moderate λ should help, extreme λ lets the
transfer term fight the interaction fit.
"""

import dataclasses

import numpy as np

from repro.baselines.st_transrec_method import STTransRecMethod
from repro.eval.viz import sweep_chart

LAMBDAS = (0.0, 0.3, 1.0, 3.0, 10.0)


def _quality(context, lam):
    scores = []
    for seed in (0, 1):
        profile = dataclasses.replace(context.profile, seed=seed)
        config = profile.st_transrec_config(
            lambda_mmd=lam, use_mmd=lam > 0,
        )
        method = STTransRecMethod(config).fit(context.split)
        scores.append(
            context.evaluator.evaluate(method).scores["recall"][10]
        )
    return float(np.mean(scores))


def test_lambda_mmd_sweep(benchmark, foursquare_context, results_sink):
    results = benchmark.pedantic(
        lambda: {lam: _quality(foursquare_context, lam)
                 for lam in LAMBDAS},
        rounds=1, iterations=1,
    )
    results_sink("ablation_lambda_mmd",
                 sweep_chart(results, "lambda", "recall@10"))

    # A moderate λ should not lose to disabling transfer entirely.
    moderate = max(results[0.3], results[1.0])
    assert moderate >= results[0.0] - 0.01
    # Every λ trains a working model (no divergence).
    assert min(results.values()) > 0.1
