"""Figure 3 — top-k comparison of all nine methods on Foursquare.

Paper: ST-TransRec achieves Recall@10 ≈ 0.450, ahead of PACE (+2.5%),
SH-CDL (+2.3%), CTLM (+6.6%), ST-LDA (+9.9%), PR-UIDT (+20.6%),
CRCF (+22.0%), LCE (+10.8%) and ItemPop (+39.4%), with the same ordering
across Precision/NDCG/MAP.

Reproduction shape asserted here: ST-TransRec is the best method, and
the deep-model band (ST-TransRec, SH-CDL, PACE) outperforms the averages
of the topic-model band (CTLM, ST-LDA) and the CF band (LCE, CRCF,
PR-UIDT).  Known deviation (see EXPERIMENTS.md): at synthetic scale
ItemPop is stronger and the CF methods weaker than in the paper.
"""

import numpy as np

from repro.eval.experiment import run_method_comparison
from repro.eval.reporting import format_all_metrics

DEEP = ("ST-TransRec", "SH-CDL", "PACE")
TOPIC = ("CTLM", "ST-LDA")
CF = ("LCE", "CRCF", "PR-UIDT")


def band_mean(results, names, metric="recall", k=10):
    return float(np.mean([results[n][metric][k] for n in names]))


def test_fig3_foursquare_comparison(benchmark, foursquare_context,
                                    results_sink):
    results = benchmark.pedantic(
        lambda: run_method_comparison(foursquare_context),
        rounds=1, iterations=1,
    )
    results_sink("fig3_foursquare_comparison", format_all_metrics(results))

    best = max(results, key=lambda m: results[m]["recall"][10])
    assert best == "ST-TransRec", f"expected ST-TransRec on top, got {best}"
    # Band ordering: deep > topic-model and deep > CF on Recall@10.
    assert band_mean(results, DEEP) > band_mean(results, TOPIC)
    assert band_mean(results, DEEP) > band_mean(results, CF)
    # ST-TransRec clears ItemPop (the paper's largest margin).
    assert results["ST-TransRec"]["recall"][10] > \
        results["ItemPop"]["recall"][10]
