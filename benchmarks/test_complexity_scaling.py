"""Complexity check — per-epoch cost is near-linear in check-ins.

Section 3.2 argues each training iteration costs O(nD): linear in the
number of check-ins D (with n the mean POI degree in the context graph).
This bench times one joint epoch at three dataset scales and asserts
sub-quadratic growth: quadrupling the data must not blow the epoch time
up by anywhere near 16x.
"""

import numpy as np

from repro.core.trainer import STTransRecTrainer
from repro.data.split import make_crossing_city_split
from repro.data.synthetic import foursquare_like, generate_dataset

SCALES = (0.3, 0.6, 1.2)


def _epoch_seconds(scale):
    config = foursquare_like(scale=scale)
    dataset, _ = generate_dataset(config)
    split = make_crossing_city_split(dataset, config.target_city)
    model_config = __import__(
        "repro.core.config", fromlist=["STTransRecConfig"]
    ).STTransRecConfig(
        embedding_dim=32, epochs=1, pretrain_epochs=0,
        mmd_batch_size=64, seed=0,
    )
    trainer = STTransRecTrainer(split, model_config)
    stats = trainer.train_epoch(0)
    return split.train.num_checkins(), stats.seconds


def test_epoch_cost_scales_linearly(benchmark, results_sink):
    rows = benchmark.pedantic(
        lambda: [_epoch_seconds(s) for s in SCALES],
        rounds=1, iterations=1,
    )
    lines = [f"{'scale':<8}{'check-ins':<12}{'epoch seconds':<14}"]
    for scale, (checkins, seconds) in zip(SCALES, rows):
        lines.append(f"{scale:<8}{checkins:<12}{seconds:<14.3f}")
    (d_small, t_small), (_m, _tm), (d_large, t_large) = rows
    data_ratio = d_large / d_small
    time_ratio = t_large / t_small
    lines.append(f"\ndata x{data_ratio:.1f} -> time x{time_ratio:.1f} "
                 f"(quadratic would be x{data_ratio**2:.0f})")
    results_sink("complexity_scaling", "\n".join(lines))

    # Near-linear: time growth well below the quadratic envelope.
    assert time_ratio < data_ratio ** 1.5
