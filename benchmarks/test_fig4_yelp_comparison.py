"""Figure 4 — top-k comparison of all nine methods on Yelp.

Paper: ST-TransRec Recall@10 ≈ 0.505 with improvements of 3.3% (PACE),
5.9% (SH-CDL), 4.8% (CTLM), 18.6% (ST-LDA), 39.6% (PR-UIDT), 36.7%
(CRCF), 40.3% (LCE) and 45.2% (ItemPop).

Same shape assertions as Figure 3, on the Yelp-like preset (one source
city, larger city-dependent vocabulary gap).
"""

import numpy as np

from repro.eval.experiment import run_method_comparison
from repro.eval.reporting import format_all_metrics

DEEP = ("ST-TransRec", "SH-CDL", "PACE")
TOPIC = ("CTLM", "ST-LDA")
CF = ("LCE", "CRCF", "PR-UIDT")


def band_mean(results, names, metric="recall", k=10):
    return float(np.mean([results[n][metric][k] for n in names]))


def test_fig4_yelp_comparison(benchmark, yelp_context, results_sink):
    results = benchmark.pedantic(
        lambda: run_method_comparison(yelp_context),
        rounds=1, iterations=1,
    )
    results_sink("fig4_yelp_comparison", format_all_metrics(results))

    best = max(results, key=lambda m: results[m]["recall"][10])
    assert best == "ST-TransRec", f"expected ST-TransRec on top, got {best}"
    assert band_mean(results, DEEP) > band_mean(results, CF)
    assert results["ST-TransRec"]["recall"][10] > \
        results["ItemPop"]["recall"][10]
    assert results["ST-TransRec"]["recall"][10] > \
        results["CTLM"]["recall"][10]
