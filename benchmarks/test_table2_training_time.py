"""Table 2 — training time, single vs 2-worker data parallelism.

Paper (2× RTX 2080 Ti): Foursquare 94.29s → 50.74s per iteration; Yelp
275.44s → 153.73s — a ~1.8x speedup from synchronous data parallelism.

We reproduce the *mechanism* with two CPU worker processes: an epoch
with W workers takes ~1/W the synchronized steps, each applying the
averaged gradient.  Wall-clock speedup requires ≥2 physical cores; on a
single-core host (this container: ``os.sched_getaffinity`` reports 1)
the replicas time-slice one core and the bench only asserts the step
arithmetic and convergence, recording measured times for the report.
"""

import os

import numpy as np

from repro.parallel.data_parallel import DataParallelTrainer
from repro.parallel.timing import format_timing_table, measure_training_time

AVAILABLE_CORES = len(os.sched_getaffinity(0))


def _timing_config(context):
    return context.profile.st_transrec_config(
        epochs=1, pretrain_epochs=0, batch_size=256,
    )


def _run(context):
    return measure_training_time(
        context.split, _timing_config(context),
        worker_counts=(1, 2), epochs=2, warmup_epochs=1,
    )


def _assert_mechanism(context):
    """W workers halve the synchronized steps and still converge."""
    config = _timing_config(context)
    with DataParallelTrainer(context.split, config, num_workers=1) as single:
        stats_1 = single.train_epoch()
    with DataParallelTrainer(context.split, config, num_workers=2) as double:
        stats_2 = double.train_epoch()
        stats_2b = double.train_epoch()
    assert abs(stats_2.steps - np.ceil(stats_1.steps / 2)) <= 1
    assert np.isfinite(stats_2b.mean_loss)
    return stats_1, stats_2


def test_table2_foursquare(benchmark, foursquare_context, results_sink):
    rows = benchmark.pedantic(lambda: _run(foursquare_context),
                              rounds=1, iterations=1)
    text = format_timing_table({"Foursquare": rows})
    text += f"\n(available CPU cores: {AVAILABLE_CORES})"
    results_sink("table2_foursquare", text)
    _assert_mechanism(foursquare_context)
    single, double = rows
    if AVAILABLE_CORES >= 2:
        # Shape on real multi-core hardware: parallel epochs are faster.
        assert double.mean_seconds < single.mean_seconds


def test_table2_yelp(benchmark, yelp_context, results_sink):
    rows = benchmark.pedantic(lambda: _run(yelp_context),
                              rounds=1, iterations=1)
    text = format_timing_table({"Yelp": rows})
    text += f"\n(available CPU cores: {AVAILABLE_CORES})"
    results_sink("table2_yelp", text)
    _assert_mechanism(yelp_context)
    single, double = rows
    if AVAILABLE_CORES >= 2:
        assert double.mean_seconds < single.mean_seconds
