"""Table 4 — recommendation performance vs embedding size.

Paper: sweeping d ∈ {16, 32, 64, 128}, Foursquare peaks at 64 (larger
over-fits) while Yelp keeps improving to 128.  The reproduction sweeps
the same sizes at reduced data scale, where the optimum shifts toward
smaller d; the asserted shape is that a mid-or-larger size beats the
smallest (capacity helps) — per-cell numbers are recorded for
EXPERIMENTS.md.
"""

from repro.eval.experiment import run_embedding_size_sweep
from repro.eval.reporting import format_hyper_table

SIZES = (8, 16, 32, 64)


def _check_shape(results):
    recall2 = {size: results[size]["recall"][2] for size in SIZES}
    best = max(recall2, key=recall2.get)
    assert best != 8, "the smallest embedding should not be optimal"


def test_table4_embedding_foursquare(benchmark, foursquare_context,
                                     results_sink):
    results = benchmark.pedantic(
        lambda: run_embedding_size_sweep(foursquare_context, sizes=SIZES),
        rounds=1, iterations=1,
    )
    results_sink("table4_embedding_foursquare",
                 format_hyper_table(results, "dim"))
    _check_shape(results)


def test_table4_embedding_yelp(benchmark, yelp_context, results_sink):
    results = benchmark.pedantic(
        lambda: run_embedding_size_sweep(yelp_context, sizes=SIZES),
        rounds=1, iterations=1,
    )
    results_sink("table4_embedding_yelp",
                 format_hyper_table(results, "dim"))
    _check_shape(results)
