"""Figure 5 — ablation of ST-TransRec's components on Foursquare.

Paper: the full model beats every variant; NDCG@10 improvements are
3.35% over ST-TransRec-1 (no MMD), 1.78% over ST-TransRec-2 (no text)
and 1.82% over ST-TransRec-3 (no resampling).

Shape asserted: the full model leads every variant on Recall@10 — each
component contributes.  (Which component is *largest* shifts with the
dataset: the paper finds MMD on its Foursquare; our synthetic preset's
stronger city-dependent vocabulary makes text the largest factor, with
MMD second.  EXPERIMENTS.md discusses the deviation.)
"""

from repro.eval.experiment import run_ablation
from repro.eval.reporting import format_all_metrics


def test_fig5_ablation_foursquare(benchmark, foursquare_context,
                                  results_sink):
    results = benchmark.pedantic(
        lambda: run_ablation(foursquare_context),
        rounds=1, iterations=1,
    )
    results_sink("fig5_ablation_foursquare", format_all_metrics(results))

    full = results["ST-TransRec"]["recall"][10]
    no_mmd = results["ST-TransRec-1"]["recall"][10]
    no_text = results["ST-TransRec-2"]["recall"][10]
    no_resample = results["ST-TransRec-3"]["recall"][10]
    assert full >= no_mmd, "full model must beat the no-MMD variant"
    assert full >= no_text, "full model must beat the no-text variant"
    assert full >= no_resample, "full model must beat the no-resampling variant"
