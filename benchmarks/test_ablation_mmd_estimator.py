"""Design-choice ablation — MMD estimator: quadratic vs linear vs unbiased.

Section 3.2's complexity analysis motivates the linear-time MMD of
Long et al. [16]: "a direct implementation of MMD takes time O(D²) ...
we adopt the technique ... which enables to compute MMD with cost O(D)".
This bench verifies the trade-off empirically: the linear estimator's
MMD term is computed faster per batch while recommendation quality stays
in the same band as the quadratic estimator.
"""

import dataclasses
import time

import numpy as np

from repro.baselines.st_transrec_method import STTransRecMethod
from repro.nn.tensor import Tensor
from repro.transfer.kernels import GaussianKernel
from repro.transfer.mmd import mmd_linear, mmd_quadratic

ESTIMATORS = ("quadratic", "linear", "unbiased")


def _quality(context, estimator):
    scores = []
    for seed in (0, 1):
        profile = dataclasses.replace(context.profile, seed=seed)
        method = STTransRecMethod(
            profile.st_transrec_config(mmd_estimator=estimator)
        )
        method.fit(context.split)
        scores.append(
            context.evaluator.evaluate(method).scores["recall"][10]
        )
    return float(np.mean(scores))


def _speed(batch_size, dim=32, repeats=30):
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(batch_size, dim)))
    y = Tensor(rng.normal(size=(batch_size, dim)))
    kernel = GaussianKernel(1.0)
    out = {}
    for name, fn in (("quadratic", mmd_quadratic), ("linear", mmd_linear)):
        started = time.perf_counter()
        for _ in range(repeats):
            fn(x, y, kernel)
        out[name] = (time.perf_counter() - started) / repeats
    return out


def test_mmd_estimator_ablation(benchmark, foursquare_context,
                                results_sink):
    quality = benchmark.pedantic(
        lambda: {est: _quality(foursquare_context, est)
                 for est in ESTIMATORS},
        rounds=1, iterations=1,
    )
    speed = _speed(batch_size=512)
    lines = [f"{'estimator':<12}{'recall@10':<12}"]
    for est in ESTIMATORS:
        lines.append(f"{est:<12}{quality[est]:<12.4f}")
    lines.append("")
    lines.append(f"{'estimator':<12}{'sec/batch (n=512)':<20}")
    for name, seconds in speed.items():
        lines.append(f"{name:<12}{seconds:<20.5f}")
    results_sink("ablation_mmd_estimator", "\n".join(lines))

    # O(n) vs O(n²): the linear estimator must be clearly faster at
    # large batch sizes...
    assert speed["linear"] < speed["quadratic"]
    # ...without collapsing recommendation quality.
    assert quality["linear"] > 0.6 * quality["quadratic"]
