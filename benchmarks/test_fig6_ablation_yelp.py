"""Figure 6 — ablation of ST-TransRec's components on Yelp.

Same design as Figure 5 on the Yelp-like preset.  Paper shape: the full
model leads every variant on most metrics; ablation deltas are small
(1–4%), so this bench asserts the full model is not beaten by any
variant beyond a small tolerance.
"""

from repro.eval.experiment import run_ablation
from repro.eval.reporting import format_all_metrics

TOLERANCE = 0.01  # the paper's own deltas are on the order of 2%


def test_fig6_ablation_yelp(benchmark, yelp_context, results_sink):
    results = benchmark.pedantic(
        lambda: run_ablation(yelp_context),
        rounds=1, iterations=1,
    )
    results_sink("fig6_ablation_yelp", format_all_metrics(results))

    full = results["ST-TransRec"]["recall"][10]
    for variant in ("ST-TransRec-1", "ST-TransRec-2", "ST-TransRec-3"):
        assert results[variant]["recall"][10] <= full + TOLERANCE, (
            f"{variant} unexpectedly beats the full model by more than "
            f"the tolerance"
        )
