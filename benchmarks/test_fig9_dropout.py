"""Figure 9 — dropout rate sweep at k = 10 on both datasets.

Paper: moderate dropout beats none; past the optimum (0.1 Foursquare,
0.2 Yelp) metrics fall as the model under-fits, with 0.5 clearly worse
than the optimum.

Shape asserted: the best rate lies strictly inside (0, 0.5) or ties 0,
and rate 0.5 never wins.
"""

from repro.eval.experiment import run_dropout_sweep
from repro.eval.reporting import format_scalar_sweep

RATES = (0.0, 0.2, 0.3, 0.4, 0.5)
INTERIOR = (0.2, 0.3, 0.4)


def _check_shape(results):
    recall = {rate: results[rate]["recall"] for rate in RATES}
    # A moderate rate must match-or-beat both extremes (no dropout and
    # heavy dropout) — the paper's interior-optimum shape.
    interior_best = max(recall[r] for r in INTERIOR)
    assert interior_best >= recall[0.0] - 0.01, "dropout should help"
    assert interior_best >= recall[0.5] - 0.01, \
        "heavy dropout should not beat the moderate band"


def test_fig9_dropout_foursquare(benchmark, foursquare_context,
                                 results_sink):
    results = benchmark.pedantic(
        lambda: run_dropout_sweep(foursquare_context, rates=RATES),
        rounds=1, iterations=1,
    )
    results_sink("fig9_dropout_foursquare",
                 format_scalar_sweep(results, "dropout"))
    _check_shape(results)


def test_fig9_dropout_yelp(benchmark, yelp_context, results_sink):
    results = benchmark.pedantic(
        lambda: run_dropout_sweep(yelp_context, rates=RATES),
        rounds=1, iterations=1,
    )
    results_sink("fig9_dropout_yelp",
                 format_scalar_sweep(results, "dropout"))
    _check_shape(results)
