"""Design-choice ablation — segmentation threshold δ (Algorithm 1).

The paper finds δ by grid search (0.10 on Foursquare, 0.25 on Yelp) but
does not plot the sweep; this bench records it.  δ controls region
granularity: δ → 0 merges whole cities into one region (resampling
becomes a no-op), δ → 1 fragments into per-cell regions (deficits
explode).  The recorded table shows how recommendation quality and the
number of discovered regions respond.
"""

import dataclasses

import numpy as np

from repro.baselines.st_transrec_method import STTransRecMethod

THRESHOLDS = (0.02, 0.10, 0.25, 0.60)


def _run_threshold(context, threshold):
    scores = []
    regions = None
    for seed in (0, 1):
        profile = dataclasses.replace(context.profile, seed=seed)
        method = STTransRecMethod(
            profile.st_transrec_config(segmentation_threshold=threshold)
        )
        method.fit(context.split)
        scores.append(
            context.evaluator.evaluate(method).scores["recall"][10]
        )
        regions = method.trainer.segmentations[
            context.target_city].num_regions
    return float(np.mean(scores)), regions


def test_segmentation_threshold_sweep(benchmark, foursquare_context,
                                      results_sink):
    results = benchmark.pedantic(
        lambda: {t: _run_threshold(foursquare_context, t)
                 for t in THRESHOLDS},
        rounds=1, iterations=1,
    )
    lines = [f"{'delta':<8}{'recall@10':<12}{'target regions':<16}"]
    for threshold in THRESHOLDS:
        recall, regions = results[threshold]
        lines.append(f"{threshold:<8}{recall:<12.4f}{regions:<16}")
    results_sink("ablation_segmentation_threshold", "\n".join(lines))

    # Region granularity must respond to δ monotonically.
    region_counts = [results[t][1] for t in THRESHOLDS]
    assert region_counts == sorted(region_counts), (
        "higher δ must produce at least as many regions"
    )
    # Every δ trains a working model.
    assert min(results[t][0] for t in THRESHOLDS) > 0.1
