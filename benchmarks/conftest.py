"""Shared benchmark fixtures: one dataset context per preset, reused by
every table/figure module, plus a results sink that mirrors each printed
table into ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.experiment import BENCH_SCALE, build_context

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def foursquare_context():
    """Foursquare-like preset (Los Angeles target), bench scale."""
    return build_context("foursquare", scale=BENCH_SCALE, eval_seed=42)


@pytest.fixture(scope="session")
def yelp_context():
    """Yelp-like preset (Las Vegas target), bench scale."""
    return build_context("yelp", scale=BENCH_SCALE, eval_seed=42)


@pytest.fixture(scope="session")
def results_sink():
    """Callable writing a named result table to disk and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")

    return sink
