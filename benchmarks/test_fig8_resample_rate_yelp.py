"""Figure 8 — resampling rate α sweep on Yelp (Las Vegas).

Paper: the optimum is α = 0.11 with the same interior-peak shape as
Figure 7.  Shape asserted as in Figure 7, on the Yelp-like preset.
"""

from repro.eval.experiment import run_resample_sweep
from repro.eval.reporting import format_sweep

ALPHAS = (0.0, 0.06, 0.11, 0.15, 0.5)


def test_fig8_resample_rate_yelp(benchmark, yelp_context, results_sink):
    results = benchmark.pedantic(
        lambda: run_resample_sweep(yelp_context, alphas=ALPHAS),
        rounds=1, iterations=1,
    )
    results_sink("fig8_resample_rate_yelp", format_sweep(results, "alpha"))

    recall = {alpha: results[alpha]["recall"][10] for alpha in ALPHAS}
    interior = {a: r for a, r in recall.items() if 0.0 < a <= 0.15}
    # Small-delta comparison, same tolerance rationale as Figure 7.
    assert max(interior.values()) >= recall[0.0] - 0.01
    assert recall[0.5] <= max(interior.values()) + 0.01
