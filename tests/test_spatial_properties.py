"""Property-based tests for the spatial substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import CheckinDataset
from repro.data.records import POI, CheckinRecord
from repro.spatial.density import build_density_model
from repro.spatial.grid import CityGrid
from repro.spatial.resampling import DensityResampler
from repro.spatial.segmentation import segment_city


@st.composite
def random_city(draw):
    """A random small city with random check-ins."""
    num_pois = draw(st.integers(3, 15))
    pois = []
    for i in range(num_pois):
        x = draw(st.floats(0, 10, allow_nan=False))
        y = draw(st.floats(0, 10, allow_nan=False))
        pois.append(POI(i, "c", (x, y), ()))
    num_checkins = draw(st.integers(1, 40))
    checkins = []
    for t in range(num_checkins):
        user = draw(st.integers(0, 8))
        poi = draw(st.integers(0, num_pois - 1))
        checkins.append(CheckinRecord(user, poi, "c", float(t)))
    return CheckinDataset(pois, checkins)


class TestSegmentationProperties:
    @given(random_city(), st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_all_pois(self, dataset, threshold):
        grid = CityGrid(list(dataset.pois.values()), (3, 3))
        seg = segment_city(dataset, grid, threshold)
        assert set(seg.region_of_poi) == set(dataset.pois)
        # Regions partition the assigned cells: disjoint, non-empty.
        seen_cells = set()
        for region in seg.regions:
            assert region.cells
            assert not (region.cells & seen_cells)
            seen_cells |= region.cells

    @given(random_city(), st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_checkins_conserved(self, dataset, threshold):
        grid = CityGrid(list(dataset.pois.values()), (3, 3))
        seg = segment_city(dataset, grid, threshold)
        assert sum(r.num_checkins for r in seg.regions) == \
            dataset.num_checkins()


class TestDensityProperties:
    @given(random_city(), st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_distributions_are_distributions(self, dataset, threshold):
        grid = CityGrid(list(dataset.pois.values()), (3, 3))
        seg = segment_city(dataset, grid, threshold)
        model = build_density_model(dataset, seg)
        np.testing.assert_allclose(model.region_distribution.sum(), 1.0)
        assert (model.region_distribution >= 0).all()
        for poi_ids, probs in model.poi_distributions.values():
            if len(probs):
                np.testing.assert_allclose(probs.sum(), 1.0)

    @given(random_city())
    @settings(max_examples=60, deadline=None)
    def test_deficit_nonnegative_and_zero_for_max(self, dataset):
        grid = CityGrid(list(dataset.pois.values()), (3, 3))
        seg = segment_city(dataset, grid, 0.3)
        model = build_density_model(dataset, seg)
        densities = model.region_densities
        for region in seg.regions:
            deficit = model.deficit(region.region_id)
            assert deficit >= 0
        if len(densities):
            assert model.deficit(int(densities.argmax())) == 0


class TestResamplerProperties:
    @given(random_city(),
           st.floats(0.0, 1.0, allow_nan=False),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_plan_size_is_alpha_times_deficit(self, dataset, alpha, seed):
        grid = CityGrid(list(dataset.pois.values()), (3, 3))
        seg = segment_city(dataset, grid, 0.3)
        model = build_density_model(dataset, seg)
        plan = DensityResampler(model, alpha=alpha, rng=seed).plan()
        assert plan.num_draws == int(round(alpha * model.total_deficit()))
        assert all(int(p) in dataset.pois for p in plan.poi_ids)
