"""Deterministic workloads for the backend bit-identity gate.

The functions here compute exactly the quantities the backend refactor
must preserve: an nn-level forward/backward/Adam sequence and a full
data-parallel train-step run with its checkpoint arrays, in both
precision policies.  ``python -m tests.golden_backend`` (run against
the *pre-refactor* tree) froze their outputs into
``tests/data/backend_golden.npz``; ``tests/test_nn_backend.py`` re-runs
the same functions under the reference backend and asserts every array
is bit-identical to that frozen capture, then re-runs them under the
optimized backend and asserts agreement within documented tolerances.

Nothing in this module may depend on wall clock, machine, or dict
ordering — every RNG is explicitly seeded and every batch is fixed.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict

import numpy as np

from repro.nn.dtypes import using_dtype
from repro.nn.layers import MLP, Embedding
from repro.nn.losses import bce_with_logits, negative_sampling_loss
from repro.nn.ops import concat
from repro.nn.optim import Adam
from repro.nn.sparse import SparseRowGrad
from repro.nn.tensor import Tensor, softplus, stable_sigmoid

GOLDEN_PATH = Path(__file__).parent / "data" / "backend_golden.npz"

PRECISIONS = ("f64", "f32")


def _dense(grad) -> np.ndarray:
    return grad.to_dense() if isinstance(grad, SparseRowGrad) else grad


def nn_case(precision: str) -> Dict[str, np.ndarray]:
    """Forward, backward, and five Adam steps on a small tower.

    Covers the ops the training hot path exercises: sparse embedding
    gather, concat, the Linear/ReLU tower, both losses, the stable
    sigmoid/softplus kernels, dense and sparse-exact Adam.
    """
    out: Dict[str, np.ndarray] = {}
    with using_dtype(precision):
        emb = Embedding(60, 8, std=0.05, rng=5, sparse_grad=True)
        mlp = MLP(16, [12, 6], dropout=0.0, rng=7)
        rng = np.random.default_rng(11)
        users = rng.integers(0, 60, size=32)
        pois = rng.integers(0, 60, size=32)
        labels = (rng.random(32) < 0.5).astype(np.float64)

        x = concat([emb(users), emb(pois)], axis=1)
        logits = mlp(x)
        loss = bce_with_logits(logits, labels)
        pos = logits[:4]
        neg = logits[4:20].reshape(4, 4)
        loss2 = negative_sampling_loss(pos, neg)
        total = loss + loss2
        total.backward()

        out["logits"] = logits.data.copy()
        out["bce_loss"] = np.asarray(loss.data).copy()
        out["ns_loss"] = np.asarray(loss2.data).copy()
        out["emb_grad"] = _dense(emb.weight.grad).copy()
        for name, p in mlp.named_parameters():
            out[f"grad.{name}"] = np.asarray(_dense(p.grad)).copy()

        params = [emb.weight] + [p for _n, p in mlp.named_parameters()]
        opt = Adam(params, lr=1e-2, sparse_mode="exact")
        fixed = np.linspace(-4.0, 4.0, 32)
        for step in range(5):
            opt.zero_grad()
            srng = np.random.default_rng(100 + step)
            u = srng.integers(0, 60, size=32)
            v = srng.integers(0, 60, size=32)
            y = (srng.random(32) < 0.5).astype(np.float64)
            h = concat([emb(u), emb(v)], axis=1)
            step_loss = bce_with_logits(mlp(h), y)
            step_loss.backward()
            opt.step()
        out["adam_emb"] = emb.weight.data.copy()
        for name, p in mlp.named_parameters():
            out[f"adam.{name}"] = p.data.copy()

        sig_in = Tensor(fixed * 12.5)
        out["stable_sigmoid"] = stable_sigmoid(sig_in.data).copy()
        out["softplus"] = softplus(sig_in.data).copy()
    return out


def _train_world():
    from repro.data.split import make_crossing_city_split
    from repro.data.synthetic import (CitySpec, SyntheticConfig,
                                      generate_dataset)

    config = SyntheticConfig(
        cities=[
            CitySpec("springfield", grid_shape=(4, 4), num_regions=2,
                     num_pois=40, num_local_users=20,
                     accessibility_skew=1.2, topic_tilt=0.8),
            CitySpec("shelbyville", grid_shape=(4, 4), num_regions=2,
                     num_pois=36, num_local_users=18,
                     accessibility_skew=1.4, topic_tilt=0.5),
        ],
        target_city="shelbyville",
        num_topics=4,
        shared_words_per_topic=6,
        city_words_per_topic=3,
        num_generic_words=8,
        generic_fraction=0.15,
        words_per_poi=5,
        city_dependent_fraction=0.4,
        num_crossing_users=10,
        checkins_per_local_user=15,
        crossing_target_checkins=4,
        drift=0.25,
        trips_per_user=4,
        preference_concentration=0.25,
        seed=3,
    )
    dataset, _truth = generate_dataset(config)
    return make_crossing_city_split(dataset, "shelbyville")


def train_step_case(precision: str) -> Dict[str, np.ndarray]:
    """Ten single-process train steps + the checkpoint arrays they save."""
    from repro.core.checkpoint import save_checkpoint
    from repro.core.config import STTransRecConfig
    from repro.parallel.data_parallel import DataParallelTrainer
    from repro.perf.config import PerfConfig

    split = _train_world()
    config = STTransRecConfig(embedding_dim=8, batch_size=32, seed=3)
    trainer = DataParallelTrainer(split, config, num_workers=1,
                                  perf=PerfConfig(precision=precision))
    out: Dict[str, np.ndarray] = {}
    try:
        losses = trainer.run_steps(10)
        out["losses"] = np.asarray(losses, dtype=np.float64)
        for name, p in trainer.model.named_parameters():
            out[f"param.{name}"] = p.data.copy()
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "golden.ckpt.npz"
            save_checkpoint(trainer.model, trainer._master.index, path)
            with np.load(path, allow_pickle=False) as archive:
                for key in sorted(archive.files):
                    out[f"ckpt.{key}"] = np.array(archive[key])
    finally:
        trainer.close()
    return out


def compute_all() -> Dict[str, np.ndarray]:
    """Every golden array, keyed ``<case>/<precision>/<name>``."""
    arrays: Dict[str, np.ndarray] = {}
    for precision in PRECISIONS:
        for case, fn in (("nn", nn_case), ("train", train_step_case)):
            for name, value in fn(precision).items():
                arrays[f"{case}/{precision}/{name}"] = value
    return arrays


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    arrays = compute_all()
    np.savez_compressed(GOLDEN_PATH, **arrays)
    print(f"wrote {GOLDEN_PATH} ({len(arrays)} arrays)")


if __name__ == "__main__":
    main()
