"""Table 1 statistics tests."""

import pytest

from repro.data.stats import dataset_statistics


class TestDatasetStatistics:
    def test_counts_match_dataset(self, tiny_dataset):
        dataset, _ = tiny_dataset
        stats = dataset_statistics(dataset, "shelbyville")
        assert stats.num_users == len(dataset.users)
        assert stats.num_pois == len(dataset.pois)
        assert stats.num_words == len(dataset.vocabulary())
        assert stats.num_checkins == dataset.num_checkins()

    def test_crossing_slice(self, tiny_dataset, tiny_truth):
        dataset, _ = tiny_dataset
        stats = dataset_statistics(dataset, "shelbyville")
        assert stats.num_crossing_users == len(tiny_truth.crossing_user_ids)
        assert 0 < stats.num_crossing_checkins < stats.num_checkins

    def test_rows_layout(self, tiny_dataset):
        dataset, _ = tiny_dataset
        rows = dataset_statistics(dataset, "shelbyville").rows()
        labels = [label for label, _ in rows]
        assert labels == ["#Users", "#POIs", "#Words", "#Check-ins",
                          "Crossing #Users", "Crossing #Check-ins"]

    def test_unknown_city_rejected(self, tiny_dataset):
        dataset, _ = tiny_dataset
        with pytest.raises(ValueError):
            dataset_statistics(dataset, "atlantis")


class TestCityStatistics:
    def test_per_city_breakdown_sums(self, tiny_dataset):
        from repro.data.stats import city_statistics
        dataset, _ = tiny_dataset
        per_city = city_statistics(dataset)
        assert set(per_city) == {"springfield", "shelbyville"}
        assert sum(c["pois"] for c in per_city.values()) == \
            len(dataset.pois)
        assert sum(c["checkins"] for c in per_city.values()) == \
            dataset.num_checkins()

    def test_crossing_users_counted_in_both(self, tiny_dataset,
                                            tiny_truth):
        from repro.data.stats import city_statistics
        dataset, _ = tiny_dataset
        per_city = city_statistics(dataset)
        total_city_users = sum(c["users"] for c in per_city.values())
        assert total_city_users == (len(dataset.users)
                                    + len(tiny_truth.crossing_user_ids))
