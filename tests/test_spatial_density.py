"""Density model tests: Eqs. 6, 7, 8."""

import numpy as np
import pytest

from repro.spatial.density import build_density_model
from repro.spatial.grid import CityGrid
from repro.spatial.segmentation import segment_city

from tests.test_spatial_segmentation import two_cluster_city


@pytest.fixture(scope="module")
def model():
    dataset, grid = two_cluster_city()
    seg = segment_city(dataset, grid, threshold=0.5)
    return build_density_model(dataset, seg)


@pytest.fixture(scope="module")
def skewed_model():
    """Same structure but one region much denser than the other."""
    from repro.data.dataset import CheckinDataset
    from repro.data.records import POI, CheckinRecord
    pois = [
        POI(0, "c", (0.1, 0.1), ()),
        POI(1, "c", (0.1, 1.1), ()),
        POI(2, "c", (3.1, 2.1), ()),
        POI(3, "c", (3.1, 3.1), ()),
    ]
    checkins = []
    t = 0.0
    for user in range(20):       # dense community: 40 check-ins
        for poi in (0, 1):
            t += 1
            checkins.append(CheckinRecord(user, poi, "c", t))
    for user in range(100, 102):  # sparse community: 4 check-ins
        for poi in (2, 3):
            t += 1
            checkins.append(CheckinRecord(user, poi, "c", t))
    dataset = CheckinDataset(pois, checkins)
    grid = CityGrid(pois, (4, 4))
    seg = segment_city(dataset, grid, threshold=0.5)
    return build_density_model(dataset, seg)


class TestDensities:
    def test_density_values(self, model):
        # Both regions: 10 check-ins over 2 cells = 5.0
        np.testing.assert_allclose(model.region_densities, [5.0, 5.0])

    def test_max_density(self, skewed_model):
        assert skewed_model.max_density == 20.0  # 40 check-ins / 2 cells


class TestEq7PoiDistribution:
    def test_distributions_normalized(self, model):
        for poi_ids, probs in model.poi_distributions.values():
            assert len(poi_ids) == len(probs)
            np.testing.assert_allclose(probs.sum(), 1.0)

    def test_proportional_to_checkins(self, skewed_model):
        seg = skewed_model.segmentation
        dense_region = seg.region_of_poi[0]
        poi_ids, probs = skewed_model.poi_distributions[dense_region]
        # POIs 0 and 1 have equal counts → equal probability.
        np.testing.assert_allclose(probs, [0.5, 0.5])


class TestEq8RegionDistribution:
    def test_uniform_when_balanced(self, model):
        np.testing.assert_allclose(model.region_distribution, [0.5, 0.5])

    def test_sparse_region_favoured(self, skewed_model):
        seg = skewed_model.segmentation
        sparse_region = seg.region_of_poi[2]
        probs = skewed_model.region_distribution
        assert probs[sparse_region] > 0.5
        np.testing.assert_allclose(probs.sum(), 1.0)
        # Exact Eq. 8 value: inverse densities are (1, 10) → (1/11, 10/11)
        np.testing.assert_allclose(sorted(probs), [1 / 11, 10 / 11])


class TestEq6Deficit:
    def test_balanced_city_no_deficit(self, model):
        assert model.total_deficit() == 0

    def test_sparse_region_deficit(self, skewed_model):
        seg = skewed_model.segmentation
        sparse_region = seg.region_of_poi[2]
        dense_region = seg.region_of_poi[0]
        # Sparse: needs 20*2 - 4 = 36 additional check-ins.
        assert skewed_model.deficit(sparse_region) == 36
        assert skewed_model.deficit(dense_region) == 0
        assert skewed_model.total_deficit() == 36
