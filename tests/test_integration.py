"""End-to-end integration tests: the full pipeline on the tiny world."""

import numpy as np
import pytest

from repro.baselines import ItemPop, STTransRecMethod
from repro.core.config import STTransRecConfig
from repro.core.recommend import Recommender
from repro.core.trainer import STTransRecTrainer
from repro.data.io import load_dataset, save_dataset
from repro.data.split import make_crossing_city_split
from repro.eval.protocol import RankingEvaluator


def integration_config(**overrides):
    params = dict(
        embedding_dim=16,
        hidden_sizes=[16],
        epochs=6,
        pretrain_epochs=6,
        mmd_batch_size=32,
        batch_size=32,
        weight_decay=3e-4,
        grid_shape=(4, 4),
        segmentation_threshold=0.2,
        seed=0,
    )
    params.update(overrides)
    return STTransRecConfig(**params)


class RandomScorer:
    def __init__(self):
        self.rng = np.random.default_rng(0)

    def score_candidates(self, user_id, candidates):
        return self.rng.random(len(candidates))


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, integration_config())
        result = trainer.fit()
        recommender = Recommender(trainer.model, trainer.index,
                                  tiny_split.train, "shelbyville")
        evaluator = RankingEvaluator(tiny_split, seed=0)
        return trainer, result, recommender, evaluator

    def test_training_converges(self, pipeline):
        _trainer, result, _rec, _ev = pipeline
        assert result.history[-1].total < result.history[0].total

    def test_beats_random_scoring(self, pipeline):
        _trainer, _result, recommender, evaluator = pipeline
        model_score = evaluator.evaluate(recommender).scores["recall"][10]
        random_score = evaluator.evaluate(RandomScorer()).scores["recall"][10]
        assert model_score > random_score

    def test_recommendations_for_every_test_user(self, pipeline, tiny_split):
        _trainer, _result, recommender, _ev = pipeline
        for user in tiny_split.test_users:
            ranked = recommender.recommend(user, k=5)
            assert len(ranked) == 5


class TestPersistenceRoundTripPipeline:
    def test_split_after_reload_is_identical(self, tiny_dataset, tmp_path):
        dataset, _ = tiny_dataset
        path = tmp_path / "world.jsonl"
        save_dataset(dataset, path)
        reloaded = load_dataset(path)
        split_a = make_crossing_city_split(dataset, "shelbyville")
        split_b = make_crossing_city_split(reloaded, "shelbyville")
        assert split_a.test_users == split_b.test_users
        assert split_a.ground_truth == split_b.ground_truth


class TestSharedEvaluationAcrossMethods:
    def test_methods_score_identical_candidate_sets(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, seed=1)
        pop = ItemPop().fit(tiny_split)
        st = STTransRecMethod(integration_config(epochs=1,
                                                 pretrain_epochs=1))
        st.fit(tiny_split)
        result_pop = evaluator.evaluate(pop)
        result_st = evaluator.evaluate(st)
        assert result_pop.num_users == result_st.num_users
