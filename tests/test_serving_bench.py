"""Serving benchmark tests: runs end-to-end at a tiny scale."""

import pytest

from repro.serving.bench import (
    format_report,
    run_and_report,
    run_serving_benchmark,
)


@pytest.fixture(scope="module")
def result():
    return run_serving_benchmark(scale=0.1, batch_size=16, k=5, repeats=1,
                                 seed=0, embedding_dim=8)


class TestBenchmark:
    def test_measurements_are_positive(self, result):
        assert result.naive_seconds > 0
        assert result.engine64_seconds > 0
        assert result.engine32_seconds > 0
        assert result.cold_ms > 0
        assert result.warm_ms > 0
        assert result.catalogue_size > 0
        assert result.num_users > 0

    def test_batched_engine_is_faster(self, result):
        # The acceptance target (≥5× at batch ≥64) is asserted by the
        # real `repro serve-bench` run; at this micro scale we only
        # require a clear win so the test stays robust on loaded CI.
        assert result.speedup > 1.5

    def test_cache_hit_is_faster_than_miss(self, result):
        assert result.warm_ms < result.cold_ms

    def test_burst_coalesced(self, result):
        assert result.mean_coalesced_batch > 1.0

    def test_report_contains_headline_numbers(self, result):
        report = format_report(result)
        assert "speedup" in report
        assert "naive per-user loop" in report
        assert "batched engine" in report
        assert "micro-batching" in report
        assert f"top-{result.k}" in report


class TestRunAndReport:
    def test_writes_report_file(self, tmp_path):
        out = tmp_path / "results" / "serving_throughput.txt"
        report = run_and_report(scale=0.1, batch_size=8, k=3, repeats=1,
                                embedding_dim=8, out_path=out)
        assert out.exists()
        assert out.read_text().strip() == report.strip()
        assert "speedup" in report
