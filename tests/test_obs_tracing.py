"""Span tracing: tree shape, aggregation, threading, serialization."""

import threading

import pytest

from repro.obs.tracing import SpanNode, Tracer


class TestSpanTree:
    def test_repeated_spans_aggregate_into_one_node(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("epoch"):
                with tracer.span("batch"):
                    pass
                with tracer.span("batch"):
                    pass
        epoch = tracer.root.children["epoch"]
        assert epoch.count == 3
        assert epoch.children["batch"].count == 6
        assert "batch" not in tracer.root.children  # nested, not root

    def test_self_time_excludes_children(self):
        node = SpanNode("parent")
        node.total_seconds = 10.0
        node.child("a").total_seconds = 3.0
        node.child("b").total_seconds = 4.0
        assert node.self_seconds == pytest.approx(3.0)

    def test_span_records_elapsed_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert tracer.root.children["work"].total_seconds >= 0.0
        assert tracer.root.children["work"].count == 1

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.root.children["boom"].count == 1
        # The stack unwound: a new span lands at the root again.
        with tracer.span("after"):
            pass
        assert "after" in tracer.root.children

    def test_empty_property(self):
        tracer = Tracer()
        assert tracer.empty
        with tracer.span("s"):
            pass
        assert not tracer.empty


class TestThreading:
    def test_threads_have_independent_stacks_but_shared_tree(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()
                with tracer.span("inner"):
                    pass

        threads = [threading.Thread(target=work, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each thread's "inner" nests under its own root span.
        assert tracer.root.children["a"].children["inner"].count == 1
        assert tracer.root.children["b"].children["inner"].count == 1


class TestSerialization:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("epoch"):
                pass
        return tracer

    def test_roundtrip(self):
        tracer = self._sample()
        back = Tracer.from_dict(tracer.to_dict())
        assert back.to_dict() == tracer.to_dict()

    def test_merge_sums_counts_and_unions_shapes(self):
        a, b = self._sample(), self._sample()
        with b.span("serve"):
            pass
        merged = a.merged_with(b)
        assert merged.root.children["fit"].count == 2
        assert merged.root.children["fit"].children["epoch"].count == 2
        assert merged.root.children["serve"].count == 1

    def test_merge_different_names_rejected(self):
        with pytest.raises(ValueError):
            SpanNode("a").merged_with(SpanNode("b"))

    def test_render_lists_nested_spans(self):
        rendered = self._sample().render()
        assert "fit" in rendered
        assert "epoch" in rendered
        assert Tracer().render() == "(no spans recorded)"
