"""Precision-policy tests: one coercion rule, f32 end to end.

Covers the dtype policy of ``repro.nn.dtypes`` (resolve / default /
scoped override), the single :func:`~repro.nn.dtypes.coerce` promotion
rule that replaced the seed's scattered ``astype(np.float64)`` calls,
f32 dtype preservation through the autograd graph (the NEP 50 scalar
hazard), loss numerical stability at extreme logits in both precisions,
and the profiler's true-byte allocation accounting.
"""

import numpy as np
import pytest

from repro.nn import dtypes, init
from repro.nn.dtypes import coerce, default_dtype, using_dtype
from repro.nn.layers import MLP, Dropout, Embedding, Linear
from repro.nn.losses import bce_with_logits, negative_sampling_loss
from repro.nn.optim import Adam
from repro.nn.profile import profile_ops
from repro.nn.tensor import Tensor, softplus, stable_sigmoid


class TestResolve:
    def test_names(self):
        assert dtypes.resolve("f64") == np.float64
        assert dtypes.resolve("f32") == np.float32

    def test_numpy_dtypes_pass_through(self):
        assert dtypes.resolve(np.float32) == np.float32
        assert dtypes.resolve(np.dtype(np.float64)) == np.float64

    def test_none_is_current_default(self):
        assert dtypes.resolve(None) == default_dtype()
        with using_dtype("f32"):
            assert dtypes.resolve(None) == np.float32

    def test_unsupported_rejected(self):
        with pytest.raises(ValueError):
            dtypes.resolve("f16")
        with pytest.raises(ValueError):
            dtypes.resolve(np.int64)

    def test_precision_name_round_trips(self):
        for name in dtypes.PRECISIONS:
            assert dtypes.precision_name(dtypes.resolve(name)) == name


class TestUsingDtype:
    def test_scoped_and_restored(self):
        before = default_dtype()
        with using_dtype("f32"):
            assert default_dtype() == np.float32
        assert default_dtype() == before

    def test_restored_on_exception(self):
        before = default_dtype()
        with pytest.raises(RuntimeError):
            with using_dtype("f32"):
                raise RuntimeError("boom")
        assert default_dtype() == before


class TestCoerce:
    def test_integers_promote_to_policy_default(self):
        assert coerce([1, 2, 3]).dtype == np.float64
        with using_dtype("f32"):
            assert coerce([1, 2, 3]).dtype == np.float32
            assert coerce(np.arange(4)).dtype == np.float32
            assert coerce(np.array([True, False])).dtype == np.float32

    def test_floating_arrays_keep_their_dtype(self):
        with using_dtype("f32"):
            assert coerce(np.zeros(3, dtype=np.float64)).dtype == np.float64
        assert coerce(np.zeros(3, dtype=np.float32)).dtype == np.float32

    def test_explicit_target_always_wins(self):
        assert coerce(np.zeros(3), dtype="f32").dtype == np.float32
        assert coerce(np.zeros(3, np.float32), dtype="f64").dtype \
            == np.float64

    def test_no_copy_when_dtype_matches(self):
        arr = np.zeros(3)
        assert coerce(arr) is arr
        assert coerce(arr, dtype="f64") is arr


class TestTensorPolicy:
    def test_integer_data_promotes_to_policy(self):
        with using_dtype("f32"):
            assert Tensor([1, 2, 3]).data.dtype == np.float32
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_zeros_ones_follow_policy(self):
        with using_dtype("f32"):
            assert Tensor.zeros(2, 3).data.dtype == np.float32
            assert Tensor.ones(4).data.dtype == np.float32

    def test_scalar_ops_do_not_promote_f32(self):
        # NEP 50: a 0-d float64 array is a "strong" operand; the ops
        # must coerce it to the graph dtype instead.
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        for y in (x * 2.0, x + 1, x - 0.5, x / 3.0, 2.0 * x, 1.0 - x,
                  1.0 / x, x * np.float64(2.0), x + np.asarray(1.0)):
            assert y.data.dtype == np.float32, y.data.dtype

    def test_reductions_and_nonlinearities_stay_f32(self):
        x = Tensor(np.linspace(-2, 2, 8, dtype=np.float32),
                   requires_grad=True)
        for y in (x.mean(), x.sum(), x.relu(), x.tanh(), x.sigmoid(),
                  x.log_sigmoid(), x.exp(), (x * x).max()):
            assert y.data.dtype == np.float32, y.data.dtype

    def test_f32_backward_grads_are_f32(self):
        x = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        loss = ((x * 2.0 + 1.0).tanh()).mean()
        loss.backward()
        assert x.grad.dtype == np.float32

    def test_f64_reference_path_unchanged(self):
        x = Tensor(np.linspace(-1, 1, 6), requires_grad=True)
        y = (x * 2.0 + 1).sigmoid().mean()
        y.backward()
        assert y.data.dtype == np.float64
        assert x.grad.dtype == np.float64


class TestInitPolicy:
    def test_init_follows_policy(self):
        with using_dtype("f32"):
            assert init.normal((3, 4), rng=0).dtype == np.float32
            assert init.he_normal((3, 4), rng=0).dtype == np.float32
            assert init.xavier_uniform((3, 4), rng=0).dtype == np.float32
            assert init.zeros((3,)).dtype == np.float32

    def test_f32_draws_same_stream_as_f64(self):
        # Draw-then-downcast: the f32 parameters are the bitwise
        # downcast of the f64 reference draws, so cross-precision runs
        # start from the same point.
        ref = init.normal((5, 3), rng=42)
        fast = init.normal((5, 3), rng=42, dtype="f32")
        np.testing.assert_array_equal(ref.astype(np.float32), fast)

    def test_layers_inherit_policy(self):
        with using_dtype("f32"):
            assert Linear(4, 2, rng=0).weight.data.dtype == np.float32
            assert Embedding(10, 4, rng=0).weight.data.dtype == np.float32
            mlp = MLP(4, [3, 2], rng=0)
            assert all(p.data.dtype == np.float32
                       for p in mlp.parameters())

    def test_dropout_mask_follows_input(self):
        d = Dropout(0.5, rng=0)
        d.train()
        out = d(Tensor(np.ones(64, dtype=np.float32)))
        assert out.data.dtype == np.float32


class TestOptimizerPolicy:
    def test_adam_moments_match_param_dtype(self):
        with using_dtype("f32"):
            lin = Linear(4, 2, rng=0)
        x = np.ones((8, 4), dtype=np.float32)
        opt = Adam(list(lin.parameters()), lr=1e-2)
        loss = lin(x).mean()
        loss.backward()
        opt.step()
        state = opt.state_dict()
        assert all(m.dtype == np.float32 for m in state["m"])
        assert all(v.dtype == np.float32 for v in state["v"])
        assert lin.weight.data.dtype == np.float32


EXTREME_LOGITS = [-100.0, -30.0, 30.0, 100.0]


class TestLossStability:
    """log-sigmoid/BCE at extreme logits: finite values, finite grads.

    f32 overflows at ``exp(89)`` (f64 at ``exp(710)``), so the stable
    formulations must never exponentiate a large positive argument in
    either precision.
    """

    @pytest.mark.parametrize("precision", ["f64", "f32"])
    def test_stable_helpers_finite(self, precision):
        dt = dtypes.resolve(precision)
        x = np.asarray(EXTREME_LOGITS, dtype=dt)
        assert np.all(np.isfinite(stable_sigmoid(x)))
        assert np.all(np.isfinite(softplus(x)))
        assert stable_sigmoid(x).dtype == dt
        assert softplus(x).dtype == dt

    @pytest.mark.parametrize("precision", ["f64", "f32"])
    def test_log_sigmoid_finite_with_finite_grad(self, precision):
        dt = dtypes.resolve(precision)
        x = Tensor(np.asarray(EXTREME_LOGITS, dtype=dt),
                   requires_grad=True)
        y = x.log_sigmoid().sum()
        y.backward()
        assert np.isfinite(y.item())
        assert np.all(np.isfinite(x.grad))
        assert x.grad.dtype == dt

    @pytest.mark.parametrize("precision", ["f64", "f32"])
    def test_bce_finite_with_finite_grad(self, precision):
        dt = dtypes.resolve(precision)
        logits = Tensor(np.asarray(EXTREME_LOGITS, dtype=dt),
                        requires_grad=True)
        labels = np.array([0, 1, 0, 1])
        loss = bce_with_logits(logits, labels)
        loss.backward()
        assert np.isfinite(loss.item())
        assert loss.data.dtype == dt
        assert np.all(np.isfinite(logits.grad))

    @pytest.mark.parametrize("precision", ["f64", "f32"])
    def test_negative_sampling_loss_finite(self, precision):
        dt = dtypes.resolve(precision)
        pos = Tensor(np.asarray(EXTREME_LOGITS, dtype=dt),
                     requires_grad=True)
        neg = Tensor(np.asarray([EXTREME_LOGITS] * 2, dtype=dt).T,
                     requires_grad=True)
        loss = negative_sampling_loss(pos, neg)
        loss.backward()
        assert np.isfinite(loss.item())
        assert np.all(np.isfinite(pos.grad))
        assert np.all(np.isfinite(neg.grad))


class TestProfilerBytes:
    def _profiled_bytes(self, dtype) -> int:
        x = Tensor(np.ones((64, 32), dtype=dtype), requires_grad=True)
        w = Tensor(np.ones((32, 16), dtype=dtype), requires_grad=True)
        with profile_ops() as prof:
            loss = (x @ w).relu().mean()
            loss.backward()
        return prof.total_bytes_allocated

    def test_f32_allocations_halved(self):
        f64_bytes = self._profiled_bytes(np.float64)
        f32_bytes = self._profiled_bytes(np.float32)
        assert f64_bytes > 0 and f32_bytes > 0
        # Forward outputs and backward grads both halve; scalar
        # bookkeeping keeps the ratio from being exactly 2.0.
        assert f32_bytes <= 0.6 * f64_bytes

    def test_backward_grads_are_counted(self):
        x = Tensor(np.ones((128, 64)), requires_grad=True)
        with profile_ops() as prof:
            x.relu().sum().backward()
        relu = prof.stats["relu"]
        # relu's backward produces a (128, 64) float64 gradient; with
        # forward-only accounting the count would stop at out.nbytes.
        assert relu.bytes_allocated >= 2 * x.data.nbytes
