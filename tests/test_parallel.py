"""Data-parallel trainer tests (Table 2 substrate)."""

import numpy as np
import pytest

from repro.parallel.data_parallel import DataParallelTrainer
from repro.parallel.timing import format_timing_table, measure_training_time

from tests.test_core_trainer import fast_config


class TestSingleWorker:
    def test_epoch_runs_and_times(self, tiny_split):
        with DataParallelTrainer(tiny_split, fast_config(),
                                 num_workers=1) as dp:
            stats = dp.train_epoch()
        assert stats.num_workers == 1
        assert stats.steps > 0
        assert stats.seconds > 0
        assert np.isfinite(stats.mean_loss)

    def test_loss_decreases_over_epochs(self, tiny_split):
        with DataParallelTrainer(tiny_split, fast_config(),
                                 num_workers=1) as dp:
            first = dp.train_epoch().mean_loss
            for _ in range(4):
                last = dp.train_epoch().mean_loss
        assert last < first


class TestMultiWorker:
    def test_two_workers_fewer_steps(self, tiny_split):
        cfg = fast_config()
        with DataParallelTrainer(tiny_split, cfg, num_workers=1) as single:
            steps_1 = single.train_epoch().steps
        with DataParallelTrainer(tiny_split, cfg, num_workers=2) as double:
            stats = double.train_epoch()
        assert stats.steps < steps_1
        assert stats.steps == int(np.ceil(steps_1 / 2)) or \
            abs(stats.steps - steps_1 / 2) <= 1

    def test_two_workers_train_successfully(self, tiny_split):
        with DataParallelTrainer(tiny_split, fast_config(),
                                 num_workers=2) as dp:
            first = dp.train_epoch().mean_loss
            for _ in range(3):
                last = dp.train_epoch().mean_loss
        assert np.isfinite(last)
        assert last < first

    def test_close_idempotent(self, tiny_split):
        dp = DataParallelTrainer(tiny_split, fast_config(), num_workers=2)
        dp.train_epoch()
        dp.close()
        dp.close()

    def test_invalid_worker_count(self, tiny_split):
        with pytest.raises(ValueError):
            DataParallelTrainer(tiny_split, fast_config(), num_workers=0)


class TestTimingHarness:
    def test_measure_training_time_rows(self, tiny_split):
        rows = measure_training_time(tiny_split, fast_config(),
                                     worker_counts=(1,), epochs=1,
                                     warmup_epochs=0)
        assert len(rows) == 1
        assert rows[0].num_workers == 1
        assert rows[0].mean_seconds > 0

    def test_format_timing_table(self, tiny_split):
        rows = measure_training_time(tiny_split, fast_config(),
                                     worker_counts=(1,), epochs=1,
                                     warmup_epochs=0)
        text = format_timing_table({"tiny": rows})
        assert "Single-worker" in text
