"""Utility tests: RNG plumbing and validation helpers."""

import logging

import numpy as np
import pytest

from repro.utils.logging import enable_console, get_logger
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
)


class TestRng:
    def test_int_seed_reproducible(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_and_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3  # streams differ from each other

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1) == 1
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_fraction(self):
        assert check_fraction("x", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_fraction("x", 1.5)
        with pytest.raises(ValueError):
            check_fraction("x", -0.1)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"

    def test_enable_console_idempotent(self):
        enable_console()
        handlers_before = len(logging.getLogger("repro").handlers)
        enable_console()
        assert len(logging.getLogger("repro").handlers) == handlers_before
