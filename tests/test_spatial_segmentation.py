"""Algorithm 1 (region segmentation) tests."""

import pytest

from repro.data.dataset import CheckinDataset
from repro.data.records import POI, CheckinRecord
from repro.spatial.grid import CityGrid
from repro.spatial.segmentation import common_user_distance, segment_city


def two_cluster_city():
    """A 4x4 city with two user communities on opposite corners.

    Users 0-4 roam cells (0,0)/(0,1); users 10-14 roam (3,2)/(3,3).
    No user crosses, so Algorithm 1 should find two regions.
    """
    pois = [
        POI(0, "c", (0.1, 0.1), ()),
        POI(1, "c", (0.1, 1.1), ()),
        POI(2, "c", (3.1, 2.1), ()),
        POI(3, "c", (3.1, 3.1), ()),
    ]
    checkins = []
    t = 0.0
    for user in range(5):
        for poi in (0, 1):
            t += 1
            checkins.append(CheckinRecord(user, poi, "c", t))
    for user in range(10, 15):
        for poi in (2, 3):
            t += 1
            checkins.append(CheckinRecord(user, poi, "c", t))
    dataset = CheckinDataset(pois, checkins)
    grid = CityGrid(pois, (4, 4))
    return dataset, grid


class TestCommonUserDistance:
    def test_identical_sets(self):
        assert common_user_distance({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert common_user_distance({1}, {2}) == 0.0

    def test_min_normalization(self):
        # overlap 1, min size 1 → 1.0
        assert common_user_distance({1}, {1, 2, 3}) == 1.0

    def test_empty_sets(self):
        assert common_user_distance(set(), {1}) == 0.0


class TestSegmentCity:
    def test_two_communities_two_regions(self):
        dataset, grid = two_cluster_city()
        seg = segment_city(dataset, grid, threshold=0.5)
        assert seg.num_regions == 2
        # POIs 0,1 together; POIs 2,3 together; pairs apart.
        assert seg.region_of_poi[0] == seg.region_of_poi[1]
        assert seg.region_of_poi[2] == seg.region_of_poi[3]
        assert seg.region_of_poi[0] != seg.region_of_poi[2]

    def test_every_poi_assigned(self, tiny_split):
        pois = tiny_split.train.pois_in_city("shelbyville")
        grid = CityGrid(pois, (4, 4))
        seg = segment_city(tiny_split.train, grid, threshold=0.2)
        assert set(seg.region_of_poi) == {p.poi_id for p in pois}

    def test_region_bookkeeping_consistent(self, tiny_split):
        pois = tiny_split.train.pois_in_city("shelbyville")
        grid = CityGrid(pois, (4, 4))
        seg = segment_city(tiny_split.train, grid, threshold=0.2)
        total_checkins = sum(r.num_checkins for r in seg.regions)
        assert total_checkins == len(
            tiny_split.train.checkins_in_city("shelbyville")
        )
        for region in seg.regions:
            for poi_id in region.poi_ids:
                assert seg.region_of_poi[poi_id] == region.region_id

    def test_threshold_one_fragments_more(self):
        dataset, grid = two_cluster_city()
        loose = segment_city(dataset, grid, threshold=0.0)
        strict = segment_city(dataset, grid, threshold=1.0)
        assert strict.num_regions >= loose.num_regions

    def test_deterministic(self, tiny_split):
        pois = tiny_split.train.pois_in_city("shelbyville")
        grid = CityGrid(pois, (4, 4))
        a = segment_city(tiny_split.train, grid, threshold=0.2)
        b = segment_city(tiny_split.train, grid, threshold=0.2)
        assert a.region_of_poi == b.region_of_poi

    def test_invalid_threshold(self, tiny_split):
        pois = tiny_split.train.pois_in_city("shelbyville")
        grid = CityGrid(pois, (4, 4))
        with pytest.raises(ValueError):
            segment_city(tiny_split.train, grid, threshold=1.5)

    def test_density_is_checkins_per_cell(self):
        dataset, grid = two_cluster_city()
        seg = segment_city(dataset, grid, threshold=0.5)
        for region in seg.regions:
            assert region.density() == region.num_checkins / region.num_cells
