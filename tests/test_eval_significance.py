"""Paired bootstrap / sign test tests."""

import numpy as np
import pytest

from repro.eval.protocol import RankingEvaluator
from repro.eval.significance import compare_methods, paired_bootstrap

from tests.test_eval_protocol import PerfectModel, RandomModel, WorstModel


@pytest.fixture(scope="module")
def evaluator(tiny_split):
    return RankingEvaluator(tiny_split, seed=0)


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self, evaluator, tiny_split):
        comparison = compare_methods(
            evaluator, PerfectModel(tiny_split), WorstModel(tiny_split),
        )
        assert comparison.mean_difference > 0.5
        assert comparison.significant()
        assert comparison.sign_test_p < 0.05

    def test_identical_methods_not_significant(self, evaluator, tiny_split):
        comparison = compare_methods(
            evaluator, PerfectModel(tiny_split), PerfectModel(tiny_split),
        )
        assert comparison.mean_difference == 0.0
        assert not comparison.significant()
        assert comparison.sign_test_p == 1.0

    def test_direction_symmetry(self, evaluator, tiny_split):
        forward = compare_methods(
            evaluator, PerfectModel(tiny_split), RandomModel(),
        )
        backward = compare_methods(
            evaluator, RandomModel(), PerfectModel(tiny_split),
        )
        np.testing.assert_allclose(forward.mean_difference,
                                   -backward.mean_difference)

    def test_requires_per_user_detail(self, evaluator, tiny_split):
        a = evaluator.evaluate(PerfectModel(tiny_split))  # no detail
        b = evaluator.evaluate(WorstModel(tiny_split), keep_per_user=True)
        with pytest.raises(ValueError):
            paired_bootstrap(a, b)

    def test_reports_sample_size(self, evaluator, tiny_split):
        comparison = compare_methods(
            evaluator, PerfectModel(tiny_split), WorstModel(tiny_split),
        )
        assert comparison.num_users == len(evaluator.evaluable_users)

    def test_invalid_num_samples(self, evaluator, tiny_split):
        a = evaluator.evaluate(PerfectModel(tiny_split), keep_per_user=True)
        b = evaluator.evaluate(WorstModel(tiny_split), keep_per_user=True)
        with pytest.raises(ValueError):
            paired_bootstrap(a, b, num_samples=0)
