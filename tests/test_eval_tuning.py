"""Grid search helper tests."""

import pytest

from repro.core.config import STTransRecConfig
from repro.eval.tuning import (
    PAPER_LEARNING_RATES,
    expand_grid,
    grid_search,
)


def fast_base():
    return STTransRecConfig(
        embedding_dim=8, hidden_sizes=[8], epochs=1, pretrain_epochs=1,
        mmd_batch_size=16, grid_shape=(4, 4), segmentation_threshold=0.2,
        seed=0,
    )


class TestExpandGrid:
    def test_cartesian_product(self):
        points = list(expand_grid({"a": [1, 2], "b": ["x", "y"]}))
        assert len(points) == 4
        assert {"a": 1, "b": "y"} in points

    def test_empty_grid_single_point(self):
        assert list(expand_grid({})) == [{}]

    def test_deterministic_order(self):
        a = list(expand_grid({"b": [1, 2], "a": [3]}))
        b = list(expand_grid({"b": [1, 2], "a": [3]}))
        assert a == b


class TestGridSearch:
    def test_unknown_field_rejected(self, tiny_split):
        with pytest.raises(KeyError):
            grid_search(tiny_split, fast_base(), {"warp_drive": [1]})

    def test_runs_and_ranks(self, tiny_split):
        result = grid_search(
            tiny_split, fast_base(),
            {"resample_alpha": [0.0, 0.2]},
        )
        assert len(result.points) == 2
        scores = [p.score for p in result.points]
        assert scores == sorted(scores, reverse=True)
        assert result.best.overrides in (
            {"resample_alpha": 0.0}, {"resample_alpha": 0.2},
        )

    def test_table_renders(self, tiny_split):
        result = grid_search(
            tiny_split, fast_base(), {"lambda_mmd": [0.5, 1.0]},
        )
        text = result.table()
        assert "lambda_mmd" in text
        assert "recall@10" in text

    def test_paper_learning_rate_grid_defined(self):
        assert 5e-3 in PAPER_LEARNING_RATES
        assert len(PAPER_LEARNING_RATES) == 6
