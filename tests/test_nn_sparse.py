"""SparseRowGrad semantics and the bit-exactness contract with the
dense gradient path (representation, accumulation, averaging, and the
sparse optimizer updates)."""

import pickle

import numpy as np
import pytest

from repro.nn.layers import Embedding
from repro.nn.optim import SGD, Adam
from repro.nn.sparse import SparseRowGrad, average_sparse_grads, grad_values
from repro.nn.tensor import Tensor


def _grad(shape, ids, seed=0):
    rng = np.random.default_rng(seed)
    ids = np.asarray(ids, dtype=np.int64)
    return SparseRowGrad(shape, ids,
                         rng.standard_normal((ids.size,) + shape[1:]))


class TestSparseRowGrad:
    def test_basic_properties(self):
        g = _grad((10, 4), [3, 7, 3])
        assert g.shape == (10, 4)
        assert g.nnz_rows == 3
        assert g.dtype == np.float64
        assert g.nbytes == g.ids.nbytes + g.rows.nbytes
        assert "nnz_rows=3" in repr(g)

    def test_to_dense_scatter_adds_duplicates(self):
        g = SparseRowGrad((4, 2), [1, 1, 3],
                          [[1.0, 2.0], [10.0, 20.0], [5.0, 6.0]])
        dense = g.to_dense()
        np.testing.assert_array_equal(dense[1], [11.0, 22.0])
        np.testing.assert_array_equal(dense[3], [5.0, 6.0])
        np.testing.assert_array_equal(dense[[0, 2]], 0.0)

    def test_coalesce_matches_dense_scatter_bitwise(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 50, size=500)
        g = SparseRowGrad((50, 8), ids, rng.standard_normal((500, 8)))
        c = g.coalesce()
        assert np.array_equal(c.ids, np.unique(ids))
        np.testing.assert_array_equal(c.to_dense(), g.to_dense())

    def test_coalesce_noop_when_sorted_unique(self):
        g = _grad((10, 2), [1, 4, 9])
        assert g.coalesce() is g
        empty = SparseRowGrad((10, 2), [], np.zeros((0, 2)))
        assert empty.coalesce() is empty

    def test_add_sparse_sparse_concatenates(self):
        a = _grad((10, 2), [1, 3], seed=0)
        b = _grad((10, 2), [3, 5], seed=1)
        s = a + b
        assert isinstance(s, SparseRowGrad)
        assert s.nnz_rows == 4
        np.testing.assert_array_equal(s.to_dense(),
                                      a.to_dense() + b.to_dense())

    def test_add_mixed_matches_dense_accumulation(self):
        a = _grad((6, 3), [0, 2, 2])
        dense = np.random.default_rng(2).standard_normal((6, 3))
        np.testing.assert_array_equal(a + dense, a.to_dense() + dense)
        np.testing.assert_array_equal(dense + a, dense + a.to_dense())

    def test_add_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            _grad((6, 3), [0]) + _grad((7, 3), [0])

    def test_neg_and_scalar_mul(self):
        g = _grad((5, 2), [1, 2])
        np.testing.assert_array_equal((-g).to_dense(), -g.to_dense())
        np.testing.assert_array_equal((g * 2.0).to_dense(),
                                      g.to_dense() * 2.0)
        np.testing.assert_array_equal((0.5 * g).to_dense(),
                                      0.5 * g.to_dense())

    def test_pickle_roundtrip(self):
        g = _grad((8, 3), [2, 5, 2])
        back = pickle.loads(pickle.dumps(g))
        assert back.shape == g.shape
        np.testing.assert_array_equal(back.ids, g.ids)
        np.testing.assert_array_equal(back.rows, g.rows)

    def test_all_finite(self):
        g = _grad((5, 2), [1, 3])
        assert g.all_finite()
        g.rows[0, 0] = np.nan
        assert not g.all_finite()

    def test_copy_is_independent(self):
        g = _grad((5, 2), [1, 3])
        c = g.copy()
        c.rows[...] = 0.0
        assert g.rows.any()

    def test_grad_values(self):
        g = _grad((5, 2), [1, 3])
        assert grad_values(g) is g.rows
        arr = np.ones((5, 2))
        assert grad_values(arr) is arr


class TestAverageSparseGrads:
    def test_bit_identical_to_dense_stack_mean(self):
        rng = np.random.default_rng(3)
        grads = []
        for k in range(3):
            ids = rng.integers(0, 20, size=30)
            grads.append(SparseRowGrad((20, 4), ids,
                                       rng.standard_normal((30, 4))))
        avg = average_sparse_grads(grads)
        reference = np.stack([g.to_dense() for g in grads]).mean(axis=0)
        np.testing.assert_array_equal(avg.to_dense(), reference)

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            average_sparse_grads([])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            average_sparse_grads([_grad((5, 2), [1]), _grad((6, 2), [1])])


def _twin_tables(num=40, dim=6, seed=0):
    dense = Embedding(num, dim, rng=seed)
    sparse = Embedding(num, dim, rng=seed, sparse_grad=True)
    np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)
    return dense, sparse


def _run_steps(emb, opt, batches):
    for ids in batches:
        emb.zero_grad()
        out = emb(ids)
        (out * out).sum().backward()
        opt.step()


class TestSparseOptimizerBitIdentity:
    """The sparse paths must reproduce the dense updates bitwise."""

    def _batches(self, num, steps=12, seed=4):
        rng = np.random.default_rng(seed)
        return [rng.integers(0, num, size=16) for _ in range(steps)]

    def test_adam_exact_matches_dense(self):
        dense, sparse = _twin_tables()
        batches = self._batches(40)
        _run_steps(dense, Adam(dense.parameters(), lr=1e-2,
                               sparse_mode="dense"), batches)
        _run_steps(sparse, Adam(sparse.parameters(), lr=1e-2,
                                sparse_mode="exact"), batches)
        np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)

    def test_adam_exact_with_weight_decay_densifies(self):
        dense, sparse = _twin_tables()
        batches = self._batches(40)
        _run_steps(dense, Adam(dense.parameters(), lr=1e-2,
                               weight_decay=0.01, sparse_mode="dense"),
                   batches)
        _run_steps(sparse, Adam(sparse.parameters(), lr=1e-2,
                                weight_decay=0.01, sparse_mode="exact"),
                   batches)
        np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)

    def test_adam_exact_interleaved_dense_steps(self):
        # A dense grad mid-stream must invalidate the active-row mask.
        dense, sparse = _twin_tables()
        opt_d = Adam(dense.parameters(), lr=1e-2, sparse_mode="dense")
        opt_s = Adam(sparse.parameters(), lr=1e-2, sparse_mode="exact")
        batches = self._batches(40, steps=4)
        _run_steps(dense, opt_d, batches[:2])
        _run_steps(sparse, opt_s, batches[:2])
        full = np.arange(40)               # touches every row
        _run_steps(dense, opt_d, [full])
        sparse.sparse_grad = False         # force one dense step
        _run_steps(sparse, opt_s, [full])
        sparse.sparse_grad = True
        _run_steps(dense, opt_d, batches[2:])
        _run_steps(sparse, opt_s, batches[2:])
        np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)

    def test_adam_state_roundtrip_resets_active_rows(self):
        dense, sparse = _twin_tables()
        batches = self._batches(40)
        opt_d = Adam(dense.parameters(), lr=1e-2, sparse_mode="dense")
        opt_s = Adam(sparse.parameters(), lr=1e-2, sparse_mode="exact")
        _run_steps(dense, opt_d, batches[:6])
        _run_steps(sparse, opt_s, batches[:6])
        opt_s.load_state_dict(
            pickle.loads(pickle.dumps(opt_s.state_dict())))
        _run_steps(dense, opt_d, batches[6:])
        _run_steps(sparse, opt_s, batches[6:])
        np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)

    def test_adam_lazy_runs_and_stays_finite(self):
        _, sparse = _twin_tables()
        opt = Adam(sparse.parameters(), lr=1e-2, sparse_mode="lazy")
        _run_steps(sparse, opt, self._batches(40, steps=5))
        assert np.all(np.isfinite(sparse.weight.data))

    def test_adam_rejects_unknown_sparse_mode(self):
        emb = Embedding(4, 2, rng=0)
        with pytest.raises(ValueError, match="sparse_mode"):
            Adam(emb.parameters(), sparse_mode="bogus")

    def test_sgd_sparse_matches_dense(self):
        dense, sparse = _twin_tables()
        batches = self._batches(40)
        _run_steps(dense, SGD(dense.parameters(), lr=1e-2), batches)
        _run_steps(sparse, SGD(sparse.parameters(), lr=1e-2), batches)
        np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)

    def test_sgd_momentum_densifies_and_matches(self):
        dense, sparse = _twin_tables()
        batches = self._batches(40)
        _run_steps(dense, SGD(dense.parameters(), lr=1e-2, momentum=0.9),
                   batches)
        _run_steps(sparse, SGD(sparse.parameters(), lr=1e-2, momentum=0.9),
                   batches)
        np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)

    def test_empty_sparse_grad_is_noop_under_adam_exact(self):
        # A parameter that received no gradient this step (empty ids)
        # must update exactly like a dense all-zeros gradient.
        dense, sparse = _twin_tables(num=10, dim=3)
        opt_d = Adam(dense.parameters(), lr=1e-2, sparse_mode="dense")
        opt_s = Adam(sparse.parameters(), lr=1e-2, sparse_mode="exact")
        warm = [np.array([1, 2, 3])]
        _run_steps(dense, opt_d, warm)
        _run_steps(sparse, opt_s, warm)
        dense.weight.grad = np.zeros_like(dense.weight.data)
        opt_d.step()
        sparse.weight.grad = SparseRowGrad((10, 3), [], np.zeros((0, 3)))
        opt_s.step()
        np.testing.assert_array_equal(dense.weight.data, sparse.weight.data)


class TestAutogradAccumulation:
    def test_two_lookups_accumulate_sparsely(self):
        emb = Embedding(8, 2, rng=0, sparse_grad=True)
        a = emb(np.array([1, 2]))
        b = emb(np.array([2, 5]))
        (a.sum() + b.sum()).backward()
        grad = emb.weight.grad
        assert isinstance(grad, SparseRowGrad)
        dense = grad.to_dense()
        np.testing.assert_array_equal(dense[2], 2.0)
        np.testing.assert_array_equal(dense[1], 1.0)
        np.testing.assert_array_equal(dense[5], 1.0)

    def test_mixed_sparse_dense_accumulation_densifies(self):
        emb = Embedding(8, 2, rng=0, sparse_grad=True)
        ids = np.array([1, 3])
        sparse_out = emb(ids)
        dense_out = emb.weight.sum()        # dense grad over the table
        (sparse_out.sum() + dense_out).backward()
        grad = emb.weight.grad
        assert isinstance(grad, np.ndarray)
        expected = np.ones((8, 2))
        expected[1] += 1.0
        expected[3] += 1.0
        np.testing.assert_array_equal(grad, expected)

    def test_gather_rows_2d_indices(self):
        w = Tensor(np.arange(12.0).reshape(6, 2), requires_grad=True)
        idx = np.array([[0, 1], [1, 5]])
        out = w.gather_rows(idx, sparse_grad=True)
        assert out.shape == (2, 2, 2)
        out.sum().backward()
        dense = w.grad.to_dense()
        np.testing.assert_array_equal(dense[1], 2.0)
        np.testing.assert_array_equal(dense[0], 1.0)
        np.testing.assert_array_equal(dense[5], 1.0)
