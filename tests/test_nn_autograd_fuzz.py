"""Fuzzed autograd verification: random expression DAGs vs numerical grads.

Hypothesis builds random computation graphs from the op set the model
uses; every graph's analytic gradient must match central differences.
This is the strongest single guarantee on the NN substrate: if it holds
over random DAGs, the training losses' gradients are trustworthy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.ops import concat, rowwise_dot
from repro.nn.tensor import Tensor

# Unary ops that are smooth (no kinks) so finite differences converge.
SMOOTH_UNARY = ("exp", "tanh", "sigmoid", "log_sigmoid")
BINARY = ("add", "mul", "sub")


@st.composite
def expression_case(draw):
    """A random DAG recipe over two leaf matrices."""
    ops = draw(st.lists(
        st.tuples(st.sampled_from(BINARY + SMOOTH_UNARY),
                  st.integers(0, 5)),
        min_size=1, max_size=6,
    ))
    seed = draw(st.integers(0, 2**31 - 1))
    return ops, seed


def build(ops, a, b):
    """Apply the recipe; nodes list lets binaries reuse earlier results."""
    nodes = [a, b]
    for op, pick in ops:
        x = nodes[pick % len(nodes)]
        if op in SMOOTH_UNARY:
            # Keep magnitudes sane so exp never overflows.
            nodes.append(getattr(x * 0.3, op)())
        else:
            y = nodes[(pick + 1) % len(nodes)]
            if op == "add":
                nodes.append(x + y)
            elif op == "sub":
                nodes.append(x - y)
            else:
                nodes.append(x * y)
    # Reduce everything reachable to a scalar.
    return (nodes[-1] * nodes[0]).sum()


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestRandomGraphs:
    @given(expression_case())
    @settings(max_examples=60, deadline=None)
    def test_gradients_match_finite_differences(self, case):
        ops, seed = case
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(scale=0.5, size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(scale=0.5, size=(2, 3)), requires_grad=True)

        loss = build(ops, a, b)
        loss.backward()
        for leaf in (a, b):
            expected = numerical_grad(lambda: build(ops, a, b).item(),
                                      leaf.data)
            got = leaf.grad if leaf.grad is not None \
                else np.zeros_like(leaf.data)
            np.testing.assert_allclose(got, expected, atol=2e-4, rtol=2e-4)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_mixed_structural_ops(self, seed):
        """concat + rowwise_dot + matmul compose correctly."""
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(scale=0.5, size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(scale=0.5, size=(3, 2)), requires_grad=True)
        w = Tensor(rng.normal(scale=0.5, size=(4, 3)), requires_grad=True)

        def forward():
            joined = concat([a, b], axis=1)          # (3, 4)
            projected = joined @ w                   # (3, 4)x(4, 3)->(3, 3)
            return (rowwise_dot(projected, projected) * 0.1).sum()

        forward().backward()
        for leaf in (a, b, w):
            expected = numerical_grad(lambda: forward().item(), leaf.data)
            np.testing.assert_allclose(leaf.grad, expected,
                                       atol=2e-4, rtol=2e-4)
