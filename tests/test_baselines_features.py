"""Shared feature extraction tests."""

import numpy as np
import pytest

from repro.baselines.features import (
    common_words,
    cosine_scores,
    poi_word_matrix,
    tfidf_matrix,
    user_word_profiles,
    words_by_city,
)
from repro.data.dataset import CheckinDataset
from repro.data.records import POI, CheckinRecord


def feature_world():
    pois = [
        POI(0, "a", (0, 0), ("park", "shared")),
        POI(1, "a", (1, 1), ("museum",)),
        POI(2, "b", (0, 0), ("casino", "shared")),
    ]
    checkins = [
        CheckinRecord(1, 0, "a", 1.0),
        CheckinRecord(1, 0, "a", 2.0),
        CheckinRecord(1, 2, "b", 3.0),
        CheckinRecord(2, 1, "a", 4.0),
    ]
    dataset = CheckinDataset(pois, checkins)
    return dataset, dataset.build_index()


class TestPoiWordMatrix:
    def test_binary_occurrence(self):
        dataset, index = feature_world()
        matrix = poi_word_matrix(dataset, index)
        park = index.words.index_of("park")
        v0 = index.pois.index_of(0)
        assert matrix[v0, park] == 1.0
        assert matrix.sum() == 5.0  # 5 (poi, word) edges


class TestTfidf:
    def test_rows_unit_norm(self):
        dataset, index = feature_world()
        weighted = tfidf_matrix(poi_word_matrix(dataset, index))
        norms = np.linalg.norm(weighted, axis=1)
        np.testing.assert_allclose(norms[norms > 0], 1.0)

    def test_rare_words_upweighted(self):
        counts = np.array([[1.0, 1.0],
                           [0.0, 1.0],
                           [0.0, 1.0]])
        weighted = tfidf_matrix(counts)
        # word 0 appears once (rare) vs word 1 everywhere (common)
        assert weighted[0, 0] > weighted[0, 1]


class TestUserProfiles:
    def test_repeat_visits_strengthen(self):
        dataset, index = feature_world()
        profiles = user_word_profiles(dataset, index)
        u1 = index.users.index_of(1)
        park = index.words.index_of("park")
        casino = index.words.index_of("casino")
        assert profiles[u1, park] == 2.0   # two check-ins at POI 0
        assert profiles[u1, casino] == 1.0


class TestCosineScores:
    def test_identical_vector_scores_one(self):
        profile = np.array([1.0, 0.0])
        items = np.array([[2.0, 0.0], [0.0, 3.0]])
        scores = cosine_scores(profile, items)
        np.testing.assert_allclose(scores, [1.0, 0.0], atol=1e-12)

    def test_zero_profile_safe(self):
        scores = cosine_scores(np.zeros(2), np.ones((3, 2)))
        assert np.isfinite(scores).all()


class TestVocabularySplits:
    def test_words_by_city(self):
        dataset, _ = feature_world()
        by_city = words_by_city(dataset)
        assert by_city["a"] == {"park", "shared", "museum"}
        assert by_city["b"] == {"casino", "shared"}

    def test_common_words(self):
        dataset, _ = feature_world()
        assert common_words(dataset) == {"shared"}

    def test_common_words_min_cities(self):
        dataset, _ = feature_world()
        assert common_words(dataset, min_cities=1) == {
            "park", "shared", "museum", "casino"
        }
