"""Temporal split tests."""

import pytest

from repro.data.temporal import leave_last_k_out, time_threshold_split


class TestLeaveLastKOut:
    def test_holds_out_latest_events(self, tiny_dataset):
        dataset, _ = tiny_dataset
        split = leave_last_k_out(dataset, "shelbyville", k=1)
        for user in split.test_users:
            target = [r for r in dataset.user_profile(user)
                      if r.city == "shelbyville"]
            last = target[-1]
            assert last.poi_id in split.ground_truth[user]
            # Earlier target check-ins may remain in training.
            train_target = [r for r in split.train.user_profile(user)
                            if r.city == "shelbyville"]
            assert len(train_target) == len(target) - 1 or \
                len(split.ground_truth[user]) >= 1

    def test_k_larger_than_history_takes_all(self, tiny_dataset):
        dataset, _ = tiny_dataset
        split = leave_last_k_out(dataset, "shelbyville", k=10**6)
        for user in split.test_users:
            train_target = [r for r in split.train.user_profile(user)
                            if r.city == "shelbyville"]
            assert train_target == []

    def test_train_shrinks(self, tiny_dataset):
        dataset, _ = tiny_dataset
        split = leave_last_k_out(dataset, "shelbyville", k=2)
        assert split.train.num_checkins() < dataset.num_checkins()

    def test_validation(self, tiny_dataset):
        dataset, _ = tiny_dataset
        with pytest.raises(ValueError):
            leave_last_k_out(dataset, "atlantis")
        with pytest.raises(ValueError):
            leave_last_k_out(dataset, "shelbyville", k=0)

    def test_compatible_with_evaluator(self, tiny_dataset):
        from repro.eval.protocol import RankingEvaluator
        dataset, _ = tiny_dataset
        split = leave_last_k_out(dataset, "shelbyville", k=2)
        evaluator = RankingEvaluator(split, seed=0)
        assert evaluator.evaluable_users


class TestLeaveLastKOutProperties:
    def test_split_invariants_over_k(self, tiny_dataset):
        """For every k: ground truth non-empty per user, all held-out
        POIs are target-city, and train+held events partition the data."""
        dataset, _ = tiny_dataset
        for k in (1, 2, 3, 5, 8):
            split = leave_last_k_out(dataset, "shelbyville", k=k)
            assert split.test_users
            for user, truth in split.ground_truth.items():
                assert truth
                for poi_id in truth:
                    assert dataset.pois[poi_id].city == "shelbyville"
            assert split.train.num_checkins() < dataset.num_checkins()

    def test_larger_k_holds_out_more(self, tiny_dataset):
        dataset, _ = tiny_dataset
        small = leave_last_k_out(dataset, "shelbyville", k=1)
        large = leave_last_k_out(dataset, "shelbyville", k=3)
        assert large.train.num_checkins() <= small.train.num_checkins()


class TestTimeThresholdSplit:
    def test_cutoff_separates(self, tiny_dataset):
        dataset, _ = tiny_dataset
        # median timestamp of target-city events as cutoff
        times = sorted(r.timestamp
                       for r in dataset.checkins_in_city("shelbyville"))
        cutoff = times[len(times) // 2]
        split = time_threshold_split(dataset, "shelbyville", cutoff)
        for user, truth in split.ground_truth.items():
            assert truth
            # every held-out event is after the cutoff
            for record in dataset.user_profile(user):
                if (record.city == "shelbyville"
                        and record.timestamp > cutoff):
                    assert record.poi_id in truth

    def test_train_keeps_pre_cutoff_target_events(self, tiny_dataset):
        dataset, _ = tiny_dataset
        times = sorted(r.timestamp
                       for r in dataset.checkins_in_city("shelbyville"))
        cutoff = times[len(times) // 2]
        split = time_threshold_split(dataset, "shelbyville", cutoff)
        kept = [r for r in split.train.checkins_in_city("shelbyville")
                if r.user_id in set(split.test_users)]
        assert all(r.timestamp <= cutoff for r in kept)

    def test_future_cutoff_rejected(self, tiny_dataset):
        dataset, _ = tiny_dataset
        with pytest.raises(ValueError):
            time_threshold_split(dataset, "shelbyville", cutoff=1e12)

    def test_unknown_city_rejected(self, tiny_dataset):
        dataset, _ = tiny_dataset
        with pytest.raises(ValueError):
            time_threshold_split(dataset, "atlantis", cutoff=0.0)
