"""Exporters: JSONL snapshot log, Prometheus text, console summary."""

import json

import pytest

from repro.obs.export import (
    JsonlExporter,
    find_event_logs,
    find_named_files,
    load_events,
    load_jsonl_tolerant,
    load_run_state,
    load_run_state_tree,
    load_slo_summaries,
    load_span_logs,
    load_traces,
    render_console_summary,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import EVENTS_FILE, PROM_FILE, SUMMARY_FILE, Telemetry
from repro.obs.tracing import Tracer


def _registry(counter=1, latency=(1.5,)):
    r = MetricsRegistry()
    r.counter("train.steps").inc(counter)
    r.gauge("loss", component="total").set(0.5)
    h = r.histogram("lat_ms", bounds=[1.0, 10.0])
    for value in latency:
        h.observe(value)
    return r


class TestJsonl:
    def test_events_append_and_load(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.emit("note", {"msg": "hi"})
        exporter.emit_snapshot("run-a", 1, 123.0, _registry(), Tracer())
        events = load_events(path)
        assert [e["kind"] for e in events] == ["note", "snapshot"]
        assert events[1]["run_id"] == "run-a"

    def test_non_finite_floats_become_null(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = MetricsRegistry()
        registry.histogram("h", bounds=[1.0])  # empty: min/max non-finite
        JsonlExporter(path).emit_snapshot("r", 1, 0.0, registry)
        raw = path.read_text()
        assert "Infinity" not in raw
        json.loads(raw)  # stays parseable

    def test_load_run_state_keeps_newest_snapshot_per_run(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        # Cumulative snapshots within one run: only seq=2 should count.
        exporter.emit_snapshot("run-a", 1, 0.0, _registry(counter=5))
        exporter.emit_snapshot("run-a", 2, 1.0, _registry(counter=9))
        # A second run merges on top.
        exporter.emit_snapshot("run-b", 1, 2.0, _registry(counter=1))
        registry, _tracer, num_runs = load_run_state(path)
        assert num_runs == 2
        assert registry.counter("train.steps").value == 10

    def test_load_run_state_merges_histograms_across_runs(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.emit_snapshot("a", 1, 0.0, _registry(latency=(0.5, 5.0)))
        exporter.emit_snapshot("b", 1, 0.0, _registry(latency=(50.0,)))
        registry, _tracer, _n = load_run_state(path)
        hist = registry.histogram("lat_ms", bounds=[1.0, 10.0])
        assert hist.count == 3
        assert hist.bucket_counts == [1, 1, 1]


class TestTolerantJsonl:
    def test_corrupt_lines_skipped_and_counted(self, tmp_path, caplog):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "a"}\n'
                        '{"kind": "b", "truncat\n'     # killed mid-write
                        'not json at all\n'
                        '[1, 2, 3]\n'                  # non-object
                        '\n'                           # blank: not corrupt
                        '{"kind": "c"}\n')
        with caplog.at_level("WARNING"):
            events, skipped = load_jsonl_tolerant(path)
        assert [e["kind"] for e in events] == ["a", "c"]
        assert skipped == 3
        warnings = [r for r in caplog.records
                    if "corrupt" in r.getMessage()]
        assert len(warnings) == 1                      # one per file
        assert "3" in warnings[0].getMessage()

    def test_load_events_survives_truncated_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonlExporter(path)
        exporter.emit("note", {"msg": "hi"})
        with path.open("a") as handle:
            handle.write('{"kind": "snapshot", "metr')   # torn write
        assert [e["kind"] for e in load_events(path)] == ["note"]

    def test_clean_file_reports_zero_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "a"}\n')
        _events, skipped = load_jsonl_tolerant(path)
        assert skipped == 0


class TestTraceTreeLoaders:
    def test_load_traces_splits_kinds_and_sweeps_subdirs(self, tmp_path):
        (tmp_path / "traces.jsonl").write_text(
            '{"kind": "trace", "trace_id": "t1", "keep_reason": '
            '"degraded"}\n'
            '{"kind": "span", "trace": "t1", "name": "x"}\n'
            'garbage\n')
        sub = tmp_path / "router-2"
        sub.mkdir()
        (sub / "traces.jsonl").write_text(
            '{"kind": "trace", "trace_id": "t2", "keep_reason": '
            '"shed"}\n')
        traces, spans, num_logs = load_traces(tmp_path)
        assert [t["trace_id"] for t in traces] == ["t1", "t2"]
        assert [s["trace"] for s in spans] == ["t1"]
        assert num_logs == 2

    def test_load_span_logs_sweeps_shard_dirs(self, tmp_path):
        shard = tmp_path / "shard-0"
        shard.mkdir()
        (shard / "spans.jsonl").write_text(
            '{"kind": "span", "trace": "t1", "proc": "shard-0"}\n')
        spans = load_span_logs(tmp_path)
        assert [s["proc"] for s in spans] == ["shard-0"]

    def test_load_slo_summaries_skips_unreadable(self, tmp_path):
        (tmp_path / "slo.json").write_text('{"kind": "slo"}')
        bad = tmp_path / "row-2"
        bad.mkdir()
        (bad / "slo.json").write_text('{"trunc')
        loaded = load_slo_summaries(tmp_path)
        assert len(loaded) == 1
        assert loaded[0][1] == {"kind": "slo"}

    def test_find_named_files_one_level_only(self, tmp_path):
        (tmp_path / "slo.json").write_text("{}")
        deep = tmp_path / "a" / "b"
        deep.mkdir(parents=True)
        (deep / "slo.json").write_text("{}")
        assert find_named_files(tmp_path, "slo.json") == \
            [tmp_path / "slo.json"]


class TestPrometheus:
    def test_exposition_format(self):
        text = render_prometheus(_registry(latency=(0.5, 5.0, 50.0)))
        assert "# TYPE train_steps counter" in text
        assert "train_steps 1.0" in text
        assert 'loss{component="total"} 0.5' in text
        assert "# TYPE lat_ms histogram" in text
        # Buckets are cumulative; +Inf equals the total count.
        assert 'lat_ms_bucket{le="1.0"} 1' in text
        assert 'lat_ms_bucket{le="10.0"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_count 3" in text

    def test_dots_become_underscores(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c").inc()
        assert "a_b_c 1.0" in render_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_label_values_escaped_per_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("errors",
                         reason='path "C:\\tmp"\nnot found').inc()
        text = render_prometheus(registry)
        assert (r'errors{reason="path \"C:\\tmp\"\nnot found"} 1.0'
                in text)
        assert "\n\n" not in text        # no raw newline inside a label


class TestConsoleSummary:
    def test_groups_metric_kinds_and_spans(self):
        tracer = Tracer()
        with tracer.span("fit"):
            pass
        text = render_console_summary(_registry(), tracer, title="t")
        assert text.splitlines()[0] == "t"
        assert "counters" in text
        assert "gauges" in text
        assert "histograms" in text
        assert "fit" in text

    def test_empty_registry_says_so(self):
        text = render_console_summary(MetricsRegistry())
        assert "(no metrics recorded)" in text


class TestTelemetryFacade:
    def test_disabled_save_is_noop(self):
        telemetry = Telemetry()
        telemetry.counter("c").inc()
        assert telemetry.save() is None

    def test_save_writes_all_three_views(self, tmp_path):
        telemetry = Telemetry(tmp_path / "tel", run_name="t")
        telemetry.counter("train.steps").inc(4)
        with telemetry.span("fit"):
            pass
        out = telemetry.save()
        assert (out / EVENTS_FILE).exists()
        assert "train_steps 4.0" in (out / PROM_FILE).read_text()
        assert "train.steps" in (out / SUMMARY_FILE).read_text()

    def test_resaves_are_cumulative_not_double_counted(self, tmp_path):
        telemetry = Telemetry(tmp_path / "tel")
        telemetry.counter("c").inc()
        telemetry.save()
        telemetry.counter("c").inc()
        telemetry.save()
        registry, _t, num_runs = load_run_state(
            tmp_path / "tel" / EVENTS_FILE)
        assert num_runs == 1
        assert registry.counter("c").value == 2

    def test_two_runs_into_one_dir_merge(self, tmp_path):
        for _ in range(2):
            telemetry = Telemetry(tmp_path / "tel")
            telemetry.counter("c").inc(3)
            telemetry.save()
        registry, _t, num_runs = load_run_state(
            tmp_path / "tel" / EVENTS_FILE)
        assert num_runs == 2
        assert registry.counter("c").value == 6

    def test_save_with_extra_worker_registries(self, tmp_path):
        telemetry = Telemetry(tmp_path / "tel")
        telemetry.counter("steps").inc(1)
        worker = MetricsRegistry()
        worker.counter("steps").inc(9)
        telemetry.save(extra=[worker])
        registry, _t, _n = load_run_state(tmp_path / "tel" / EVENTS_FILE)
        assert registry.counter("steps").value == 10

    def test_run_ids_are_distinct(self):
        # Back-to-back construction lands in the same millisecond; the
        # ids must still differ or a shared dir would drop one run.
        a, b = Telemetry(run_name="x"), Telemetry(run_name="x")
        assert a.run_id != b.run_id


class TestTelemetryTree:
    """Aggregation across per-process subdirectories (the fleet layout)."""

    def _save_run(self, directory, value):
        telemetry = Telemetry(directory)
        telemetry.counter("fleet.shard.requests").inc(value)
        telemetry.save()

    def test_find_event_logs_sweeps_root_and_subdirs(self, tmp_path):
        self._save_run(tmp_path, 1)
        self._save_run(tmp_path / "shard-0", 2)
        self._save_run(tmp_path / "shard-1", 3)
        (tmp_path / "empty-subdir").mkdir()
        logs = find_event_logs(tmp_path)
        assert [log.parent.name for log in logs] == \
            [tmp_path.name, "shard-0", "shard-1"]

    def test_tree_merges_runs_across_logs(self, tmp_path):
        self._save_run(tmp_path, 1)
        self._save_run(tmp_path / "shard-0", 2)
        self._save_run(tmp_path / "shard-1", 3)
        registry, _tracer, num_runs, num_logs = \
            load_run_state_tree(tmp_path)
        assert (num_runs, num_logs) == (3, 3)
        assert registry.counter("fleet.shard.requests").value == 6

    def test_tree_without_root_log(self, tmp_path):
        self._save_run(tmp_path / "shard-0", 5)
        registry, _tracer, num_runs, num_logs = \
            load_run_state_tree(tmp_path)
        assert (num_runs, num_logs) == (1, 1)
        assert registry.counter("fleet.shard.requests").value == 5

    def test_empty_tree(self, tmp_path):
        registry, _tracer, num_runs, num_logs = \
            load_run_state_tree(tmp_path)
        assert (num_runs, num_logs) == (0, 0)
        assert len(registry) == 0

    def test_nested_logs_below_one_level_are_ignored(self, tmp_path):
        self._save_run(tmp_path / "shard-0" / "deeper", 7)
        _registry, _tracer, _runs, num_logs = \
            load_run_state_tree(tmp_path)
        assert num_logs == 0
