"""Drift-aware stream generator: ordering, cohorts, determinism."""

import pytest

import numpy as np

from repro.streaming import CheckinStreamGenerator, EventLog, StreamConfig

TARGET = "shelbyville"


@pytest.fixture(scope="module")
def dataset(tiny_dataset):
    data, _truth = tiny_dataset
    return data


@pytest.fixture(scope="module")
def generator(dataset, tiny_truth):
    config = StreamConfig(drift=0.6, users_per_burst=4,
                          checkins_per_user=3, seed=7)
    return CheckinStreamGenerator(dataset, tiny_truth, TARGET, config)


class TestConfig:
    def test_drift_bounds(self):
        with pytest.raises(ValueError):
            StreamConfig(drift=1.5)
        with pytest.raises(ValueError):
            StreamConfig(drift=-0.1)

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            StreamConfig(users_per_burst=0)
        with pytest.raises(ValueError):
            StreamConfig(checkins_per_user=0)


class TestBurst:
    def test_events_are_target_city_only(self, generator, dataset):
        target_pois = {p.poi_id for p in dataset.pois.values()
                       if p.city == TARGET}
        for event in generator.burst():
            assert event.city == TARGET
            assert event.poi_id in target_pois

    def test_timestamps_continue_past_base_dataset(self, generator,
                                                   dataset):
        horizon = max(c.timestamp for c in dataset.checkins)
        burst = generator.burst()
        assert all(e.timestamp > horizon for e in burst)
        # Within and across bursts, time is strictly increasing.
        stamps = [e.timestamp for e in burst] \
            + [e.timestamp for e in generator.burst()]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_cohort_is_crossing_users(self, generator, tiny_truth):
        assert set(generator.streamers) <= set(tiny_truth.crossing_user_ids)
        for event in generator.burst():
            assert event.user_id in generator.streamers

    def test_pinned_cohort(self, generator):
        pinned = generator.streamers[:2]
        burst = generator.burst(users=pinned)
        assert {e.user_id for e in burst} == set(pinned)
        counts = {u: sum(e.user_id == u for e in burst) for u in pinned}
        assert all(c >= 1 for c in counts.values())

    def test_seq_unstamped_until_logged(self, generator):
        assert {e.seq for e in generator.burst()} == {-1}


class TestStream:
    def test_stream_yields_requested_bursts(self, generator):
        bursts = list(generator.stream(3))
        assert len(bursts) == 3

    def test_determinism_by_seed(self, dataset, tiny_truth):
        def run(seed):
            config = StreamConfig(drift=0.5, users_per_burst=3,
                                  checkins_per_user=2, seed=seed)
            gen = CheckinStreamGenerator(dataset, tiny_truth,
                                         TARGET, config)
            return [e.to_dict() for burst in gen.stream(2) for e in burst]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_ingest_burst_stamps_sequence(self, dataset, tiny_truth):
        gen = CheckinStreamGenerator(
            dataset, tiny_truth, TARGET,
            StreamConfig(users_per_burst=3, checkins_per_user=2, seed=1))
        log = EventLog()
        first = gen.ingest_burst(log)
        second = gen.ingest_burst(log)
        seqs = [e.seq for e in first + second]
        assert seqs == list(range(len(seqs)))
        assert log.events() == first + second


class TestDrift:
    def test_drifted_preference_is_normalized_blend(self, generator,
                                                    tiny_truth):
        uid = generator.streamers[0]
        drifted = generator.drifted_preference(uid)
        assert drifted.shape == \
            np.asarray(tiny_truth.user_preferences[uid]).shape
        assert np.isclose(drifted.sum(), 1.0)
        assert np.all(drifted >= 0.0)

    def test_zero_drift_keeps_base_preference(self, dataset,
                                              tiny_truth):
        gen = CheckinStreamGenerator(dataset, tiny_truth, TARGET,
                                     StreamConfig(drift=0.0, seed=0))
        uid = gen.streamers[0]
        base = np.asarray(tiny_truth.user_preferences[uid], dtype=float)
        np.testing.assert_allclose(gen.drifted_preference(uid),
                                   base / base.sum())

    def test_unknown_user_raises(self, generator):
        with pytest.raises(KeyError):
            generator.drifted_preference(-1)


class TestValidation:
    def test_unknown_target_city_raises(self, dataset, tiny_truth):
        with pytest.raises(ValueError):
            CheckinStreamGenerator(dataset, tiny_truth, "ogdenville")
