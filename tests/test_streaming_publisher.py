"""Versioned publication: generation metadata, torn-state detection."""

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    read_checkpoint_manifest,
    save_checkpoint,
)
from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.streaming import (
    LATEST_POINTER,
    ModelPublisher,
    TornPublicationError,
    load_latest,
    read_latest_pointer,
)


@pytest.fixture(scope="module")
def world(tiny_dataset):
    dataset, _truth = tiny_dataset
    index = dataset.build_index()
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       STTransRecConfig(embedding_dim=8, seed=3))
    model.eval()
    return model, index


class TestGenerationMetadata:
    def test_manifest_records_generation(self, world, tmp_path):
        model, index = world
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, index, path, generation=7)
        assert read_checkpoint_manifest(path)["generation"] == 7

    def test_generation_is_optional(self, world, tmp_path):
        model, index = world
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, index, path)
        assert "generation" not in read_checkpoint_manifest(path)

    def test_negative_generation_rejected(self, world, tmp_path):
        model, index = world
        with pytest.raises(ValueError):
            save_checkpoint(model, index, tmp_path / "ckpt.npz",
                            generation=-1)


class TestPublisher:
    def test_generations_advance_from_zero(self, world, tmp_path):
        model, index = world
        publisher = ModelPublisher(tmp_path)
        assert publisher.generation == -1
        assert publisher.publish(model, index) == 0
        assert publisher.publish(model, index) == 1
        assert publisher.generation == 1
        pointer = read_latest_pointer(tmp_path)
        assert pointer == {"generation": 1, "file": "gen-1.npz"}
        # Both generations stay on disk.
        assert (tmp_path / "gen-0.npz").exists()
        assert (tmp_path / "gen-1.npz").exists()

    def test_restarted_publisher_resumes_sequence(self, world, tmp_path):
        model, index = world
        ModelPublisher(tmp_path).publish(model, index)
        resumed = ModelPublisher(tmp_path)
        assert resumed.generation == 0
        assert resumed.publish(model, index) == 1

    def test_load_latest_roundtrip_is_bit_exact(self, world, tmp_path):
        model, index = world
        publisher = ModelPublisher(tmp_path)
        publisher.publish(model, index)
        loaded, loaded_index, generation = load_latest(tmp_path)
        assert generation == 0
        assert list(loaded_index.users) == list(index.users)
        np.testing.assert_array_equal(loaded.user_vectors(),
                                      model.user_vectors())
        np.testing.assert_array_equal(loaded.poi_vectors(),
                                      model.poi_vectors())


class TestTornPublications:
    def test_nothing_published_raises_file_not_found(self, tmp_path):
        assert read_latest_pointer(tmp_path) is None
        with pytest.raises(FileNotFoundError):
            load_latest(tmp_path)

    def test_pointer_to_missing_file_is_torn(self, world, tmp_path):
        model, index = world
        ModelPublisher(tmp_path).publish(model, index)
        (tmp_path / "gen-0.npz").unlink()
        with pytest.raises(TornPublicationError, match="missing"):
            load_latest(tmp_path)

    def test_unreadable_pointer_is_torn(self, tmp_path):
        (tmp_path / LATEST_POINTER).write_text("{not json")
        with pytest.raises(TornPublicationError, match="unreadable"):
            read_latest_pointer(tmp_path)
        with pytest.raises(TornPublicationError):
            load_latest(tmp_path)

    def test_pointer_missing_fields_is_torn(self, tmp_path):
        (tmp_path / LATEST_POINTER).write_text(json.dumps({"file": "x"}))
        with pytest.raises(TornPublicationError):
            read_latest_pointer(tmp_path)

    def test_stale_generation_manifest_is_torn(self, world, tmp_path):
        """A mid-swap pointer flip to the wrong generation is detected.

        Simulates the race the ordered-write protocol prevents: the
        pointer claims generation 1 but the named file's manifest still
        records generation 0.
        """
        model, index = world
        ModelPublisher(tmp_path).publish(model, index)
        pointer = {"generation": 1, "file": "gen-0.npz"}
        (tmp_path / LATEST_POINTER).write_text(json.dumps(pointer))
        with pytest.raises(TornPublicationError, match="torn publication"):
            load_latest(tmp_path)

    def test_manifest_without_generation_is_torn(self, world, tmp_path):
        model, index = world
        save_checkpoint(model, index, tmp_path / "gen-0.npz")  # no tag
        pointer = {"generation": 0, "file": "gen-0.npz"}
        (tmp_path / LATEST_POINTER).write_text(json.dumps(pointer))
        with pytest.raises(TornPublicationError):
            load_latest(tmp_path)
