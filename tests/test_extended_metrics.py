"""HitRate / MRR / AUC tests."""

import numpy as np
import pytest

from repro.eval.extended_metrics import (
    auc,
    extended_metrics_at_k,
    hit_rate_at_k,
    mrr_at_k,
)

RANKED = [10, 20, 30, 40, 50]
RELEVANT = {20, 40}


class TestHitRate:
    def test_hit(self):
        assert hit_rate_at_k(RANKED, RELEVANT, 2) == 1.0

    def test_miss(self):
        assert hit_rate_at_k(RANKED, {99}, 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hit_rate_at_k(RANKED, RELEVANT, 0)
        with pytest.raises(ValueError):
            hit_rate_at_k(RANKED, set(), 3)


class TestMRR:
    def test_first_hit_position(self):
        # first relevant at rank 2 → 1/2
        assert mrr_at_k(RANKED, RELEVANT, 5) == 0.5

    def test_no_hit_in_window(self):
        assert mrr_at_k(RANKED, {40}, 2) == 0.0

    def test_top_hit_is_one(self):
        assert mrr_at_k([20, 10], RELEVANT, 2) == 1.0


class TestAUC:
    def test_perfect_ranking(self):
        assert auc([20, 40, 10, 30], RELEVANT) == 1.0

    def test_worst_ranking(self):
        assert auc([10, 30, 50, 20, 40], RELEVANT) == 0.0

    def test_hand_computed(self):
        # positives at positions 1, 3; negatives at 0, 2, 4
        # pairs won: pos1 beats neg2,neg4 (2); pos3 beats neg4 (1) → 3/6
        assert auc(RANKED, RELEVANT) == 0.5

    def test_needs_both_classes(self):
        with pytest.raises(ValueError):
            auc([1, 2], {1, 2})
        with pytest.raises(ValueError):
            auc([1, 2], set())


class TestBundle:
    def test_all_keys_present(self):
        out = extended_metrics_at_k(RANKED, RELEVANT, 3)
        assert set(out) == {"hit_rate", "mrr", "auc"}
        for value in out.values():
            assert 0.0 <= value <= 1.0
