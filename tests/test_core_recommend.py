"""Recommender (top-k inference) tests."""

import numpy as np
import pytest

from repro.core.config import STTransRecConfig
from repro.core.recommend import Recommender
from repro.core.trainer import STTransRecTrainer

from tests.test_core_trainer import fast_config


@pytest.fixture(scope="module")
def recommender(tiny_split):
    trainer = STTransRecTrainer(tiny_split, fast_config())
    trainer.fit()
    return Recommender(trainer.model, trainer.index, tiny_split.train,
                       "shelbyville")


class TestRecommend:
    def test_topk_sorted_by_score(self, recommender, tiny_split):
        user = tiny_split.test_users[0]
        ranked = recommender.recommend(user, k=5)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
        assert len(ranked) == 5

    def test_recommends_only_target_city(self, recommender, tiny_split):
        user = tiny_split.test_users[0]
        for poi_id, _ in recommender.recommend(user, k=10):
            assert tiny_split.train.pois[poi_id].city == "shelbyville"

    def test_excludes_visited_when_asked(self, recommender, tiny_split):
        # Local users have target-city training check-ins to exclude.
        local = next(u for u in tiny_split.train.users_in_city("shelbyville")
                     if u not in tiny_split.test_users)
        visited = {r.poi_id
                   for r in tiny_split.train.user_profile(local)
                   if r.city == "shelbyville"}
        assert visited
        ranked = recommender.recommend(local, k=50, exclude_visited=True)
        assert not ({p for p, _ in ranked} & visited)

    def test_include_visited_flag(self, recommender, tiny_split):
        local = next(u for u in tiny_split.train.users_in_city("shelbyville")
                     if u not in tiny_split.test_users)
        with_visited = recommender.recommend(local, k=100,
                                             exclude_visited=False)
        without = recommender.recommend(local, k=100, exclude_visited=True)
        assert len(with_visited) > len(without)

    def test_invalid_k(self, recommender, tiny_split):
        with pytest.raises(ValueError):
            recommender.recommend(tiny_split.test_users[0], k=0)

    def test_unknown_user_raises(self, recommender):
        with pytest.raises(KeyError):
            recommender.score_candidates(99999, [0])


class TestBatchAndExport:
    def test_batch_skips_unknown_users(self, recommender, tiny_split):
        users = tiny_split.test_users[:2] + [10**9]
        results = recommender.batch_recommend(users, k=3)
        assert set(results) == set(tiny_split.test_users[:2])
        for ranked in results.values():
            assert len(ranked) == 3

    def test_export_jsonl_roundtrip(self, recommender, tiny_split,
                                    tmp_path):
        import json
        path = tmp_path / "recs" / "out.jsonl"
        count = recommender.export_recommendations(
            path, tiny_split.test_users[:3], k=4)
        assert count == 3
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert set(first) == {"user_id", "recommendations"}
        assert len(first["recommendations"]) == 4
        assert {"poi_id", "score"} == set(first["recommendations"][0])


class TestRecommendBatch:
    """recommend_batch: engine-backed batching with identical semantics."""

    def test_matches_per_user_recommend(self, recommender, tiny_split):
        users = tiny_split.test_users[:4]
        batched = recommender.recommend_batch(users, k=5)
        assert set(batched) == set(users)
        for user_id in users:
            expected = recommender.recommend(user_id, k=5)
            assert [p for p, _ in batched[user_id]] == \
                [p for p, _ in expected]
            np.testing.assert_allclose(
                [s for _, s in batched[user_id]],
                [s for _, s in expected], atol=1e-9)

    def test_uses_serving_engine(self, recommender, tiny_split):
        recommender.recommend_batch(tiny_split.test_users[:2], k=3)
        from repro.serving.engine import InferenceEngine
        assert isinstance(recommender._engine, InferenceEngine)

    def test_exclusion_semantics_identical(self, recommender, tiny_split):
        local = next(u for u in tiny_split.train.users_in_city("shelbyville")
                     if u not in tiny_split.test_users)
        batched = recommender.recommend_batch([local], k=100)[local]
        looped = recommender.recommend(local, k=100)
        assert [p for p, _ in batched] == [p for p, _ in looped]
        raw = recommender.recommend_batch([local], k=100,
                                          exclude_visited=False)[local]
        assert len(raw) > len(batched)

    def test_skips_unknown_users(self, recommender, tiny_split):
        users = tiny_split.test_users[:2] + [10**9]
        batched = recommender.recommend_batch(users, k=3)
        assert set(batched) == set(tiny_split.test_users[:2])

    def test_invalid_k(self, recommender, tiny_split):
        with pytest.raises(ValueError):
            recommender.recommend_batch(tiny_split.test_users[:1], k=0)

    def test_falls_back_without_engine_support(self, recommender,
                                               tiny_split):
        """A model exposing only score_pois_for_user still works."""

        class OpaqueModel:
            def __init__(self, inner):
                self._inner = inner

            def score_pois_for_user(self, user_index, poi_indices):
                return self._inner.score_pois_for_user(user_index,
                                                       poi_indices)

        plain = Recommender(OpaqueModel(recommender.model),
                            recommender.index, tiny_split.train,
                            "shelbyville")
        users = tiny_split.test_users[:2]
        batched = plain.recommend_batch(users, k=3)
        assert plain._engine is False  # engine build failed, remembered
        for user_id in users:
            assert batched[user_id] == recommender.recommend(user_id, k=3)

    def test_attach_engine_catalogue_mismatch_rejected(self, recommender,
                                                       tiny_split):
        class FakeEngine:
            catalogue_poi_ids = np.array([1, 2, 3])

        with pytest.raises(ValueError):
            recommender.attach_engine(FakeEngine())


class TestCaseStudyHelpers:
    def test_describe_recommendations(self, recommender, tiny_split):
        user = tiny_split.test_users[0]
        described = recommender.describe_recommendations(user, k=3)
        assert len(described) == 3
        for poi_id, words in described:
            assert isinstance(words, list)

    def test_user_top_words_ranked_by_frequency(self, recommender,
                                                tiny_split):
        user = tiny_split.test_users[0]
        words = recommender.user_top_words(user, k=5)
        assert len(words) <= 5
        assert len(set(words)) == len(words)
