"""CLI smoke tests: each command runs end-to-end on tiny inputs."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--preset", "foursquare", "--out", "x.jsonl"])
        assert args.preset == "foursquare"
        assert args.scale == 0.5

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--preset", "yelp", "--methods", "DeepFM"])


class TestCommands:
    def test_generate_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(["generate", "--preset", "foursquare",
                     "--out", str(out), "--scale", "0.15"])
        assert code == 0
        assert out.exists()
        assert "#Check-ins" in capsys.readouterr().out

    def test_train_evaluate_roundtrip(self, tmp_path, capsys):
        data = tmp_path / "data.jsonl"
        model = tmp_path / "model.npz"
        main(["generate", "--preset", "foursquare", "--out", str(data),
              "--scale", "0.15"])
        code = main(["train", "--data", str(data),
                     "--target", "los_angeles",
                     "--embedding-dim", "8", "--epochs", "1",
                     "--pretrain-epochs", "1",
                     "--model-out", str(model)])
        assert code == 0
        assert model.exists()
        meta = json.loads((tmp_path / "model.npz.json").read_text())
        assert meta["target_city"] == "los_angeles"

        code = main(["evaluate", "--data", str(data),
                     "--target", "los_angeles",
                     "--embedding-dim", "8", "--epochs", "1",
                     "--pretrain-epochs", "1",
                     "--model", str(model)])
        assert code == 0
        out = capsys.readouterr().out
        assert "recall" in out

    def test_bench_requires_valid_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "--preset", "yelp", "--experiment", "bogus"])

    def test_bench_parses(self):
        args = build_parser().parse_args(
            ["bench", "--preset", "yelp", "--experiment", "ablation"])
        assert args.experiment == "ablation"

    def test_bench_dispatch(self, capsys, monkeypatch):
        """The bench command routes to the right runner and prints."""
        import repro.eval.experiment as experiment

        table = {m: {k: 0.5 for k in (2, 4, 6, 8, 10)}
                 for m in ("recall", "precision", "ndcg", "map")}

        monkeypatch.setattr(
            experiment, "run_ablation",
            lambda ctx: {"ST-TransRec": table, "ST-TransRec-1": table},
        )

        class FakeContext:
            pass

        monkeypatch.setattr(experiment, "build_context",
                            lambda preset, scale: FakeContext())
        code = main(["bench", "--preset", "yelp",
                     "--experiment", "ablation"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ST-TransRec-1" in out
        assert "recall@10" in out  # the bar chart footer

    def test_serve_bench_parses_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.tiny is False
        assert args.batch_size == 256
        assert args.embedding_dim == 64
        assert args.scale == 3.0
        assert args.out == "benchmarks/results/serving_throughput.txt"

    def test_fleet_bench_parses_defaults(self):
        args = build_parser().parse_args(["fleet-bench"])
        assert args.tiny is False
        assert args.shards is None
        assert args.dtype == "float32"
        assert args.rate is None
        assert args.scale == 3.0
        assert args.out == "BENCH_serving.json"

    def test_fleet_smoke_parses(self):
        args = build_parser().parse_args(["fleet-smoke"])
        assert args.seed == 3

    def test_perf_bench_parses_defaults(self):
        args = build_parser().parse_args(["perf-bench"])
        assert args.tiny is False
        assert args.workers == 2
        assert args.steps is None
        assert args.out_dir == "."
        assert args.baseline is None

    def test_perf_bench_writes_json_and_gates(self, tmp_path, capsys,
                                              monkeypatch):
        import repro.cli as cli_mod

        def fake_train(out_path, tiny, workers, steps):
            payload = {"train_step": {"speedup": 2.0, "workers": workers,
                                      "f32": {"speedup": 2.6},
                                      "f32_vs_f64": {"speedup": 1.3}},
                       "embedding_backward": {"speedup": 5.0},
                       "transport": {"speedup": 3.0},
                       "negative_sampling": {"speedup": 4.0},
                       "backend_train_step": {"speedup": 1.2,
                                              "cpu_count": 1}}
            with open(out_path, "w") as fh:
                json.dump(payload, fh)
            return payload

        def fake_serving(out_path, tiny):
            payload = {"serving_batch": {"speedup": 9.0}}
            with open(out_path, "w") as fh:
                json.dump(payload, fh)
            return payload

        import repro.perf.bench as bench_mod
        monkeypatch.setattr(bench_mod, "run_train_bench", fake_train)
        monkeypatch.setattr(bench_mod, "run_serving_bench", fake_serving)

        baseline = tmp_path / "baselines.json"
        baseline.write_text(json.dumps({
            "full": {"train": {"tolerance": 0.2,
                               "metrics": {"train_step.speedup": 2.0}}}}))
        code = main(["perf-bench", "--out-dir", str(tmp_path),
                     "--baseline", str(baseline)])
        assert code == 0
        assert (tmp_path / "BENCH_train.json").exists()
        assert (tmp_path / "BENCH_serving.json").exists()
        assert "regression gate" in capsys.readouterr().out

        baseline.write_text(json.dumps({
            "full": {"train": {"tolerance": 0.0,
                               "metrics": {"train_step.speedup": 99.0}}}}))
        code = main(["perf-bench", "--out-dir", str(tmp_path),
                     "--baseline", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_serve_bench_runs_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "serving.txt"
        code = main(["serve-bench", "--scale", "0.1", "--batch-size", "8",
                     "--k", "3", "--repeats", "1", "--embedding-dim", "8",
                     "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "speedup" in printed
        assert out.exists()
        assert "batched engine" in out.read_text()

    def test_serve_bench_dash_out_skips_writing(self, capsys,
                                                monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(["serve-bench", "--scale", "0.1", "--batch-size", "4",
                     "--k", "3", "--repeats", "1", "--embedding-dim", "8",
                     "--out", "-"])
        assert code == 0
        assert not (tmp_path / "benchmarks").exists()

    def test_compare_subset(self, capsys):
        code = main(["compare", "--preset", "foursquare",
                     "--methods", "ItemPop", "CRCF",
                     "--scale", "0.15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ItemPop" in out
        assert "CRCF" in out


class TestResumableTraining:
    def test_checkpoint_and_resume_flags(self, tmp_path, capsys):
        data = tmp_path / "data.jsonl"
        ckpt = tmp_path / "run.npz"
        main(["generate", "--preset", "foursquare", "--out", str(data),
              "--scale", "0.15"])
        base = ["train", "--data", str(data), "--target", "los_angeles",
                "--embedding-dim", "8", "--epochs", "2",
                "--pretrain-epochs", "1"]
        code = main(base + ["--checkpoint-every", "1",
                            "--checkpoint-path", str(ckpt)])
        assert code == 0
        assert ckpt.exists()
        out = capsys.readouterr().out
        assert "trained 2 epochs" in out

        code = main(["train", "--data", str(data),
                     "--target", "los_angeles",
                     "--embedding-dim", "8", "--epochs", "3",
                     "--pretrain-epochs", "1",
                     "--resume-from", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trained 1 epochs" in out    # only the remaining epoch

    def test_fault_smoke_parses(self):
        args = build_parser().parse_args(["fault-smoke", "--seed", "5"])
        assert args.seed == 5
        assert args.func.__name__ == "cmd_fault_smoke"


class TestChaosBenchParser:
    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos-bench"])
        assert args.tiny is False
        assert args.shards is None
        assert args.deadline_ms == 250.0
        assert args.load_seconds == 4.0
        assert args.rate is None
        assert args.out == "BENCH_serving.json"
        assert args.baseline is None
        assert args.trace is True
        assert args.all_slow is False

    def test_trace_and_all_slow_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["chaos-bench", "--no-trace", "--all-slow"])
        assert args.trace is False
        assert args.all_slow is True

    def test_tiny_and_overrides(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["chaos-bench", "--tiny", "--shards", "1", "2",
             "--deadline-ms", "100", "--rate", "50", "--dtype", "float64"])
        assert args.tiny is True
        assert args.shards == [1, 2]
        assert args.deadline_ms == 100.0
        assert args.rate == 50.0
        assert args.dtype == "float64"

    def test_rejects_unknown_dtype(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos-bench", "--dtype", "float16"])


class TestTraceToolingParsers:
    def test_trace_report_requires_telemetry_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace-report"])

    def test_trace_report_defaults(self):
        args = build_parser().parse_args(
            ["trace-report", "--telemetry-dir", "t"])
        assert args.timelines == 1
        assert args.func.__name__ == "cmd_trace_report"

    def test_metrics_report_format_defaults_to_console(self):
        args = build_parser().parse_args(
            ["metrics-report", "--telemetry-dir", "t"])
        assert args.format == "console"

    def test_metrics_report_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["metrics-report", "--telemetry-dir", "t",
                 "--format", "bogus"])


class TestTraceToolingCommands:
    """``trace-report`` / ``metrics-report`` on a hand-written tree.

    Spinning a real fleet is integration-test territory
    (test_fleet_tracing.py); here a tiny synthetic telemetry tree
    exercises the CLI plumbing: loaders, format switches, exit codes.
    """

    def _span(self, name, cat, ts_ms, dur_ms, trace="t1", proc="router"):
        return {"trace": trace, "span": f"s-{name}", "parent": "",
                "name": name, "cat": cat, "ts_ms": ts_ms,
                "dur_ms": dur_ms, "proc": proc}

    def _tree(self, root):
        from repro.obs.slo import SloTracker, default_serving_slos
        from repro.obs.spans import (
            CAT_ADMISSION,
            CAT_MERGE,
            CAT_QUEUE,
            CAT_SCORE,
        )
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(root, run_name="cli-test")
        telemetry.counter("fleet.shard.requests").inc(3)
        telemetry.save()
        # One degraded trace whose covering segments sum to 10ms.
        trace = {
            "kind": "trace", "trace_id": "t1", "user_id": 7,
            "start_ms": 100.0, "latency_ms": 10.0, "quality": "partial",
            "deadline_met": True, "shed": False, "shed_reason": "",
            "outcome": "ok", "keep_reason": "degraded", "attrs": {},
            "events": [
                self._span("queue_wait", CAT_QUEUE, 100.0, 2.0),
                self._span("admission", CAT_ADMISSION, 102.0, 1.0),
                self._span("fanout_wait", CAT_SCORE, 103.0, 5.0),
                self._span("finalize", CAT_MERGE, 108.0, 2.0),
            ],
        }
        loose = dict(self._span("score_slice", CAT_SCORE, 104.0, 3.0,
                                proc="shard-0"))
        loose["kind"] = "span"
        with (root / "traces.jsonl").open("w") as handle:
            handle.write(json.dumps(trace) + "\n")
            handle.write(json.dumps(loose) + "\n")
        slo = SloTracker(default_serving_slos(250.0))
        for _ in range(4):
            slo.record_request(answered=True, deadline_met=True,
                               latency_ms=5.0)
        (root / "slo.json").write_text(json.dumps(
            {"kind": "slo", "deadline_ms": 250.0,
             "shards": {"2": slo.summary()}}))
        return root

    def test_trace_report_renders_attribution(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = main(["trace-report", "--telemetry-dir", str(root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "p99 attribution" in out
        assert "kept because: degraded=1" in out
        assert "slowest trace(s)" in out

    def test_trace_report_empty_tree_exits_nonzero(self, tmp_path):
        code = main(["trace-report", "--telemetry-dir", str(tmp_path)])
        assert code == 1

    def test_metrics_report_console_includes_flight_and_slo(
            self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = main(["metrics-report", "--telemetry-dir", str(root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "flight recorder: 1 kept trace(s)" in out
        assert "SLO summary" in out
        assert "deadline_hit" in out

    def test_metrics_report_json_is_parseable(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = main(["metrics-report", "--telemetry-dir", str(root),
                     "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traces"]["kept"] == 1
        assert doc["slo"][0]["shards"]["2"]["objectives"]
        assert "fleet.shard.requests" in doc["metrics"]

    def test_metrics_report_prometheus_format(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = main(["metrics-report", "--telemetry-dir", str(root),
                     "--format", "prometheus"])
        assert code == 0
        assert "fleet_shard_requests 3.0" in capsys.readouterr().out

    def test_metrics_report_empty_tree_exits_nonzero(self, tmp_path):
        code = main(["metrics-report", "--telemetry-dir", str(tmp_path)])
        assert code == 1
