"""Tail-sampled flight recorder: keep decisions, ring bounds, dumps."""

import json

import pytest

from repro.obs.flight import FlightRecorder, TraceRecord


def _trace(latency_ms=1.0, quality="full", **kwargs):
    kwargs.setdefault("trace_id", "t")
    kwargs.setdefault("user_id", 0)
    kwargs.setdefault("start_ms", 0.0)
    return TraceRecord(latency_ms=latency_ms, quality=quality, **kwargs)


class TestKeepDecisions:
    def test_errored_trace_always_kept(self):
        recorder = FlightRecorder()
        assert recorder.record(_trace(outcome="error")) == "error"

    def test_shed_trace_always_kept(self):
        recorder = FlightRecorder()
        reason = recorder.record(_trace(shed=True, shed_reason="queue"))
        assert reason == "shed"

    def test_degraded_quality_always_kept(self):
        recorder = FlightRecorder()
        assert recorder.record(_trace(quality="partial")) == "degraded"
        assert recorder.record(_trace(quality="cached")) == "degraded"

    def test_boring_trace_dropped(self):
        recorder = FlightRecorder()
        assert recorder.record(_trace()) is None
        assert recorder.dropped == 1

    def test_no_slow_keeping_before_history_warm(self):
        recorder = FlightRecorder(min_history=64)
        # Even an outlier is not "slow" until the rolling threshold has
        # something to roll over.
        assert recorder.record(_trace(latency_ms=10_000.0)) is None
        assert recorder.slow_threshold_ms() is None

    def test_slow_tail_kept_after_warmup(self):
        recorder = FlightRecorder(min_history=8, slow_quantile=0.9)
        for _ in range(64):
            recorder.record(_trace(latency_ms=1.0))
        assert recorder.record(_trace(latency_ms=50.0)) == "slow"

    def test_uniformly_slow_stream_does_not_keep_everything(self):
        # The threshold tracks the traffic: if *every* request takes
        # 200ms, 200ms is normal, not tail.
        recorder = FlightRecorder(min_history=8)
        kept = sum(
            1 for _ in range(256)
            if recorder.record(_trace(latency_ms=200.0)) is not None)
        assert kept < 256 * 0.5


class TestJudgeKeepSplit:
    def test_judge_then_keep_matches_record(self):
        split, whole = FlightRecorder(), FlightRecorder()
        for quality in ("full", "partial", "full", "cached"):
            trace = _trace(quality=quality)
            reason = split.judge(latency_ms=trace.latency_ms,
                                 quality=trace.quality)
            if reason is not None:
                split.keep(reason, trace)
            whole.record(trace)
        assert split.summary() == whole.summary()

    def test_judge_counts_drops_without_a_record(self):
        recorder = FlightRecorder()
        # The hot path never builds a TraceRecord for a boring trace.
        assert recorder.judge(latency_ms=1.0, quality="full") is None
        assert (recorder.seen, recorder.dropped, recorder.kept) == (1, 1, 0)

    def test_judge_flags_error_and_shed(self):
        recorder = FlightRecorder()
        assert recorder.judge(latency_ms=1.0, quality="full",
                              outcome="error") == "error"
        assert recorder.judge(latency_ms=1.0, quality="full",
                              shed=True) == "shed"


class TestRingAndSummary:
    def test_ring_evicts_oldest_kept(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(4):
            recorder.record(_trace(quality="partial", user_id=i))
        assert [r.user_id for _, r in recorder.traces()] == [2, 3]
        assert recorder.kept == 4          # tallies keep counting

    def test_summary_shape(self):
        recorder = FlightRecorder()
        recorder.record(_trace(quality="partial"))
        recorder.record(_trace())
        summary = recorder.summary()
        assert summary["seen"] == 2
        assert summary["kept"] == 1
        assert summary["dropped"] == 1
        assert summary["kept_by_reason"]["degraded"] == 1
        assert summary["buffered"] == 1

    def test_kept_degraded_excludes_merely_slow(self):
        recorder = FlightRecorder(min_history=4)
        recorder.record(_trace(shed=True))
        recorder.record(_trace(quality="partial"))
        for _ in range(16):
            recorder.record(_trace(latency_ms=1.0))
        recorder.record(_trace(latency_ms=99.0))
        assert recorder.kept_by_reason["slow"] >= 1
        assert recorder.kept_degraded() == 2

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(slow_quantile=1.5)
        with pytest.raises(ValueError):
            FlightRecorder(min_history=0)


class TestDump:
    def test_dump_writes_trace_and_span_lines(self, tmp_path):
        recorder = FlightRecorder()
        record = _trace(quality="partial", user_id=3,
                        events=[{"name": "queue_wait", "cat": "queue"}])
        recorder.record(record)
        path = tmp_path / "traces.jsonl"
        written = recorder.dump(path, extra_events=[
            {"name": "worker_respawn", "cat": "supervise"}])
        assert written == 2
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "trace"
        assert lines[0]["keep_reason"] == "degraded"
        assert lines[0]["user_id"] == 3
        assert lines[0]["events"][0]["name"] == "queue_wait"
        assert lines[1] == {"kind": "span", "name": "worker_respawn",
                            "cat": "supervise"}

    def test_dump_appends_across_recorders(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        for _ in range(2):
            recorder = FlightRecorder()
            recorder.record(_trace(shed=True))
            recorder.dump(path)
        assert len(path.read_text().splitlines()) == 2

    def test_trace_record_roundtrip(self):
        record = _trace(quality="partial", latency_ms=12.5, shed=False,
                        deadline_met=False, attrs={"batch_trace": "b1"})
        back = TraceRecord.from_dict(record.to_dict())
        assert back.quality == "partial"
        assert back.latency_ms == pytest.approx(12.5)
        assert not back.deadline_met
        assert back.attrs == {"batch_trace": "b1"}
