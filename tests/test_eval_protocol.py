"""Evaluation protocol tests (100-sampled-negative ranking)."""

import numpy as np
import pytest

from repro.eval.protocol import RankingEvaluator


class PerfectModel:
    """Scores ground-truth POIs above everything else."""

    def __init__(self, split):
        self.split = split

    def score_candidates(self, user_id, candidates):
        truth = self.split.ground_truth[user_id]
        return np.array([1.0 if c in truth else 0.0 for c in candidates])


class WorstModel(PerfectModel):
    def score_candidates(self, user_id, candidates):
        return -super().score_candidates(user_id, candidates)


class RandomModel:
    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def score_candidates(self, user_id, candidates):
        return self.rng.random(len(candidates))


class AmnesiacModel:
    """Knows nobody — every user raises KeyError."""

    def score_candidates(self, user_id, candidates):
        raise KeyError(user_id)


@pytest.fixture(scope="module")
def evaluator(tiny_split):
    return RankingEvaluator(tiny_split, seed=0)


class TestCandidates:
    def test_candidates_contain_truth_plus_negatives(self, evaluator,
                                                     tiny_split):
        for user in evaluator.evaluable_users:
            candidates = evaluator._candidates[user]
            truth = tiny_split.ground_truth[user]
            assert truth <= set(candidates)
            negatives = set(candidates) - truth
            # negatives never visited by this user anywhere in training
            visited = {r.poi_id
                       for r in tiny_split.train.user_profile(user)}
            assert not (negatives & visited)

    def test_candidates_all_target_city(self, evaluator, tiny_split):
        target_pois = {p.poi_id
                       for p in tiny_split.train.pois_in_city("shelbyville")}
        for candidates in evaluator._candidates.values():
            assert set(candidates) <= target_pois

    def test_same_candidates_across_evaluations(self, tiny_split):
        a = RankingEvaluator(tiny_split, seed=5)
        b = RankingEvaluator(tiny_split, seed=5)
        assert a._candidates == b._candidates


class TestEvaluate:
    def test_perfect_model_maximal_recall(self, evaluator, tiny_split):
        result = evaluator.evaluate(PerfectModel(tiny_split))
        # Every user's truth fits within the largest cutoff (10) in the
        # tiny dataset, so recall@10 should be 1.
        assert result.scores["recall"][10] == 1.0
        assert result.scores["ndcg"][10] == 1.0

    def test_worst_model_near_zero(self, evaluator, tiny_split):
        result = evaluator.evaluate(WorstModel(tiny_split))
        assert result.scores["recall"][2] < 0.1

    def test_random_model_between(self, evaluator, tiny_split):
        perfect = evaluator.evaluate(PerfectModel(tiny_split))
        worst = evaluator.evaluate(WorstModel(tiny_split))
        random_ = evaluator.evaluate(RandomModel())
        assert (worst.scores["recall"][10]
                <= random_.scores["recall"][10]
                <= perfect.scores["recall"][10])

    def test_per_user_detail_optional(self, evaluator, tiny_split):
        without = evaluator.evaluate(PerfectModel(tiny_split))
        with_detail = evaluator.evaluate(PerfectModel(tiny_split),
                                         keep_per_user=True)
        assert without.per_user == {}
        assert set(with_detail.per_user) == set(evaluator.evaluable_users)

    def test_unknown_users_skipped_and_counted(self, tiny_split):
        evaluator = RankingEvaluator(tiny_split, seed=0)
        with pytest.raises(RuntimeError):
            evaluator.evaluate(AmnesiacModel())

    def test_table_renders(self, evaluator, tiny_split):
        result = evaluator.evaluate(PerfectModel(tiny_split))
        table = result.table()
        assert "recall" in table
        assert "@2" in table


class TestConstruction:
    def test_empty_cutoffs_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            RankingEvaluator(tiny_split, cutoffs=())

    def test_custom_cutoffs(self, tiny_split):
        ev = RankingEvaluator(tiny_split, cutoffs=(1, 3), seed=0)
        result = ev.evaluate(PerfectModel(tiny_split))
        assert set(result.scores["recall"].keys()) == {1, 3}

    def test_full_ranking_mode(self, tiny_split):
        """num_negatives=None ranks against the whole target catalogue."""
        ev = RankingEvaluator(tiny_split, num_negatives=None, seed=0)
        target = {p.poi_id
                  for p in tiny_split.train.pois_in_city("shelbyville")}
        for user, candidates in ev._candidates.items():
            visited = {r.poi_id
                       for r in tiny_split.train.user_profile(user)}
            expected = (target - visited) | tiny_split.ground_truth[user]
            assert set(candidates) == expected
        # Full ranking is harder than 100-negatives for the same model.
        sampled = RankingEvaluator(tiny_split, seed=0)
        full = ev.evaluate(RandomModel()).scores["recall"][10]
        part = sampled.evaluate(RandomModel()).scores["recall"][10]
        assert full <= part + 0.05
