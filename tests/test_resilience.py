"""Unit tests for the request-level resilience primitives.

Everything here runs against injected fake clocks — no sleeps, no
processes.  The integration of these pieces into the serving fleet is
covered by ``test_fleet_resilience.py``.
"""

import pytest

from repro.resilience import (
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    Deadline,
    FallbackChain,
    PopularityFallback,
    QUALITY_CACHED,
    QUALITY_FALLBACK,
    QUALITY_PARTIAL,
    QUALITY_TIERS,
    ResilienceConfig,
)
from repro.resilience.admission import (
    ADMITTED,
    SHED_EXPIRED,
    SHED_OVERLOAD,
    SHED_QUEUE_FULL,
)
from repro.serving.cache import TopKCache


class FakeClock:
    """Manually advanced monotonic clock (seconds)."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        # The extra nanosecond keeps float rounding from landing a hair
        # *short* of an exact boundary (e.g. a 50ms backoff edge).
        self.now += ms / 1000.0 + 1e-9


class TestDeadline:
    def test_budget_counts_from_anchor(self):
        clock = FakeClock()
        deadline = Deadline(50.0, clock=clock)
        assert deadline.start == clock.now
        assert deadline.elapsed_ms() == 0.0
        assert deadline.remaining_ms() == 50.0
        clock.advance_ms(20.0)
        assert deadline.elapsed_ms() == pytest.approx(20.0)
        assert deadline.remaining_ms() == pytest.approx(30.0)
        assert not deadline.expired()
        clock.advance_ms(30.0)
        assert deadline.expired()

    def test_explicit_start_charges_queueing_to_the_budget(self):
        clock = FakeClock(now=10.0)
        # Scheduled to arrive 40ms ago: most of the budget is gone.
        deadline = Deadline(50.0, clock=clock, start=10.0 - 0.040)
        assert deadline.elapsed_ms() == pytest.approx(40.0)
        assert deadline.remaining_ms() == pytest.approx(10.0)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-5.0)


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("probe_backoff_ms", 50.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == BreakerState.CLOSED
        assert breaker.record_failure() is True
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_probe_recovers_on_success(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()          # backoff not yet elapsed
        clock.advance_ms(50.0)
        assert breaker.allow()              # the single probe grant
        assert breaker.state == BreakerState.HALF_OPEN
        assert not breaker.allow()          # no second probe
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_longer_backoff(self):
        clock = FakeClock()
        breaker = self._breaker(clock, backoff_factor=2.0,
                                max_backoff_ms=150.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.current_backoff_ms() == 50.0
        clock.advance_ms(50.0)
        assert breaker.allow()
        assert breaker.record_failure() is True     # probe failed
        assert breaker.current_backoff_ms() == 100.0
        clock.advance_ms(50.0)
        assert not breaker.allow()          # old backoff no longer enough
        clock.advance_ms(50.0)
        assert breaker.allow()
        breaker.record_failure()
        # Third consecutive trip would be 200ms but is capped at 150ms.
        assert breaker.current_backoff_ms() == 150.0

    def test_recovery_resets_the_backoff_schedule(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance_ms(50.0)
        breaker.allow()
        breaker.record_success()            # closed again, trips reset
        for _ in range(3):
            breaker.record_failure()
        assert breaker.current_backoff_ms() == 50.0

    def test_cancel_probe_returns_the_grant_without_penalty(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance_ms(50.0)
        assert breaker.allow()
        breaker.cancel_probe()
        assert breaker.state == BreakerState.OPEN
        # The open timer kept its original start: re-granted at once.
        assert breaker.allow()
        assert breaker.state == BreakerState.HALF_OPEN

    def test_stats_and_validation(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_success()
        stats = breaker.stats()
        assert stats["state"] == BreakerState.CLOSED
        assert stats["failures"] == 1 and stats["successes"] == 1
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_backoff_ms=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(backoff_factor=0.5)


class TestAdmissionController:
    def _controller(self, clock, **kwargs):
        kwargs.setdefault("queue_limit", 4)
        kwargs.setdefault("target_ms", 10.0)
        kwargs.setdefault("interval_ms", 100.0)
        return AdmissionController(clock=clock, **kwargs)

    def test_admits_healthy_requests(self):
        clock = FakeClock()
        admission = self._controller(clock)
        ok, reason = admission.admit(remaining_ms=40.0, sojourn_ms=1.0,
                                     queued_ahead=0)
        assert ok and reason == ADMITTED
        assert admission.admitted == 1 and admission.shed == 0

    def test_sheds_expired_and_overflow(self):
        clock = FakeClock()
        admission = self._controller(clock)
        ok, reason = admission.admit(remaining_ms=0.0, sojourn_ms=50.0,
                                     queued_ahead=0)
        assert not ok and reason == SHED_EXPIRED
        ok, reason = admission.admit(remaining_ms=40.0, sojourn_ms=1.0,
                                     queued_ahead=4)
        assert not ok and reason == SHED_QUEUE_FULL
        assert admission.shed_by_reason[SHED_EXPIRED] == 1
        assert admission.shed_by_reason[SHED_QUEUE_FULL] == 1

    def test_codel_overload_requires_a_full_bad_interval(self):
        clock = FakeClock()
        admission = self._controller(clock)
        # High sojourns, but one interval has not elapsed yet.
        admission.admit(remaining_ms=100.0, sojourn_ms=30.0, queued_ahead=0)
        assert not admission.overloaded
        clock.advance_ms(100.0)
        # Interval closes: the *minimum* sojourn (30ms) beat the 10ms
        # target, so queueing delay is structural.
        admission.admit(remaining_ms=100.0, sojourn_ms=35.0, queued_ahead=0)
        assert admission.overloaded

    def test_one_fast_request_clears_the_overload_verdict(self):
        clock = FakeClock()
        admission = self._controller(clock)
        admission.admit(remaining_ms=100.0, sojourn_ms=30.0, queued_ahead=0)
        clock.advance_ms(100.0)
        admission.admit(remaining_ms=100.0, sojourn_ms=30.0, queued_ahead=0)
        assert admission.overloaded
        # A single low-sojourn arrival inside the next interval drags
        # the windowed minimum below target: burst, not overload.
        admission.admit(remaining_ms=100.0, sojourn_ms=1.0, queued_ahead=0)
        clock.advance_ms(100.0)
        admission.admit(remaining_ms=100.0, sojourn_ms=30.0, queued_ahead=0)
        assert not admission.overloaded

    def test_overloaded_sheds_only_requests_that_cannot_make_it(self):
        clock = FakeClock()
        admission = self._controller(clock)
        admission.note_service(20.0)        # service estimate: 20ms
        admission.admit(remaining_ms=100.0, sojourn_ms=30.0, queued_ahead=0)
        clock.advance_ms(100.0)
        admission.admit(remaining_ms=100.0, sojourn_ms=30.0,
                        queued_ahead=0)
        assert admission.overloaded
        ok, reason = admission.admit(remaining_ms=5.0, sojourn_ms=30.0,
                                     queued_ahead=0)
        assert not ok and reason == SHED_OVERLOAD
        # Plenty of remaining budget is still admitted under overload.
        ok, reason = admission.admit(remaining_ms=80.0, sojourn_ms=30.0,
                                     queued_ahead=0)
        assert ok and reason == ADMITTED

    def test_service_estimate_is_an_ewma(self):
        clock = FakeClock()
        admission = self._controller(clock, ewma_alpha=0.5)
        admission.note_service(10.0)
        assert admission.service_estimate_ms == 10.0
        admission.note_service(20.0)
        assert admission.service_estimate_ms == pytest.approx(15.0)
        admission.note_service(-1.0)        # ignored
        assert admission.service_estimate_ms == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)
        with pytest.raises(ValueError):
            AdmissionController(target_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionController(ewma_alpha=0.0)


class TestPopularityFallback:
    def test_ranks_by_popularity_then_catalogue_position(self):
        fallback = PopularityFallback(
            visit_counts={11: 3, 12: 7, 13: 3, 14: 0},
            catalogue_poi_ids=[11, 12, 13, 14])
        items = fallback.top_k(4)
        assert [p for p, _ in items] == [12, 11, 13, 14]
        assert [s for _, s in items] == [7.0, 3.0, 3.0, 0.0]

    def test_exclusion_and_bounds(self):
        fallback = PopularityFallback(
            visit_counts={11: 3, 12: 7}, catalogue_poi_ids=[11, 12, 13])
        assert fallback.top_k(0) == []
        assert [p for p, _ in fallback.top_k(2, exclude={12})] == [11, 13]
        assert len(fallback.top_k(10)) == fallback.catalogue_size


class TestFallbackChain:
    def _cache(self, clock):
        return TopKCache(max_size=8, ttl_seconds=1.0, clock=clock)

    def test_tier_order_partial_beats_cached_beats_popularity(self):
        clock = FakeClock()
        cache = self._cache(clock)
        cache.put(7, 3, [(1, 0.9)])
        popularity = PopularityFallback({2: 5}, [1, 2])
        chain = FallbackChain(cache=cache, popularity=popularity)
        items, quality = chain.answer(7, 3, partial_items=[(4, 0.5)])
        assert quality == QUALITY_PARTIAL and items == [(4, 0.5)]
        items, quality = chain.answer(7, 3)
        assert quality == QUALITY_CACHED and items == [(1, 0.9)]
        items, quality = chain.answer(8, 3)      # no cache entry
        assert quality == QUALITY_FALLBACK
        assert [p for p, _ in items] == [2, 1]

    def test_stale_cache_entries_served_only_when_allowed(self):
        clock = FakeClock()
        cache = self._cache(clock)
        cache.put(7, 3, [(1, 0.9)])
        clock.advance_ms(2000.0)                 # past the 1s TTL
        strict = FallbackChain(cache=cache, serve_stale=False)
        items, quality = strict.answer(7, 3)
        assert quality == QUALITY_FALLBACK and items == []
        lenient = FallbackChain(cache=cache, serve_stale=True)
        items, quality = lenient.answer(7, 3)
        assert quality == QUALITY_CACHED and items == [(1, 0.9)]

    def test_empty_chain_answers_empty_fallback(self):
        chain = FallbackChain()
        items, quality = chain.answer(1, 5)
        assert items == [] and quality == QUALITY_FALLBACK

    def test_quality_tally_covers_every_tier(self):
        clock = FakeClock()
        cache = self._cache(clock)
        cache.put(7, 3, [(1, 0.9)])
        chain = FallbackChain(cache=cache,
                              popularity=PopularityFallback({}, [1]))
        chain.note_full()
        chain.answer(7, 3, partial_items=[(4, 0.5)])
        chain.answer(7, 3)
        chain.answer(9, 3)
        tally = chain.stats()["answers_by_quality"]
        assert tally == {tier: 1 for tier in QUALITY_TIERS}


class TestResilienceConfig:
    def test_defaults_are_valid(self):
        config = ResilienceConfig()
        assert config.deadline_ms > 0
        assert config.max_hedges == 1

    def test_rejects_bad_knobs(self):
        for kwargs in ({"deadline_ms": 0.0}, {"hop_timeout_ms": -1.0},
                       {"hedge_after_ms": 0.0}, {"max_hedges": -1},
                       {"finalize_margin_ms": -0.5},
                       {"breaker_failure_threshold": 0},
                       {"breaker_backoff_factor": 0.9},
                       {"admission_queue_limit": 0},
                       {"cache_size": -1}, {"cache_ttl_seconds": 0.0}):
            with pytest.raises(ValueError):
                ResilienceConfig(**kwargs)
