"""SLO tracking and multi-window burn-rate alerting (fake clock)."""

import pytest

from repro.obs.slo import (
    BurnRateAlert,
    SloObjective,
    SloTracker,
    default_serving_slos,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _tracker(clock, **kwargs):
    kwargs.setdefault("short_window_s", 60.0)
    kwargs.setdefault("long_window_s", 300.0)
    kwargs.setdefault("min_events", 20)
    return SloTracker(default_serving_slos(250.0), clock=clock, **kwargs)


class TestObjectives:
    def test_default_set_covers_three_kinds(self):
        objectives = default_serving_slos(250.0)
        assert [o.name for o in objectives] == [
            "availability", "deadline_hit", "latency_p99"]
        assert objectives[2].threshold_ms == 250.0

    def test_error_budget(self):
        objective = SloObjective("a", "availability", 0.99)
        assert objective.error_budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SloObjective("a", "nonsense", 0.99)
        with pytest.raises(ValueError):
            SloObjective("a", "availability", 1.0)
        with pytest.raises(ValueError):
            SloObjective("a", "latency", 0.99)      # needs threshold_ms
        with pytest.raises(ValueError):
            SloTracker([])
        with pytest.raises(ValueError):
            SloTracker(default_serving_slos(250.0) * 2)  # duplicate names


class TestRecording:
    def test_good_request_is_good_everywhere(self):
        clock = FakeClock()
        tracker = _tracker(clock)
        tracker.record_request(answered=True, deadline_met=True,
                               latency_ms=10.0)
        for name in ("availability", "deadline_hit", "latency_p99"):
            assert tracker.compliance(name) == 1.0

    def test_unanswered_is_bad_everywhere(self):
        tracker = _tracker(FakeClock())
        tracker.record_request(answered=False)
        for name in ("availability", "deadline_hit", "latency_p99"):
            assert tracker.compliance(name) == 0.0

    def test_late_answer_is_available_but_misses_deadline(self):
        tracker = _tracker(FakeClock())
        tracker.record_request(answered=True, deadline_met=False,
                               latency_ms=400.0)
        assert tracker.compliance("availability") == 1.0
        assert tracker.compliance("deadline_hit") == 0.0
        assert tracker.compliance("latency_p99") == 0.0  # 400 > 250ms

    def test_compliance_is_one_before_any_traffic(self):
        tracker = _tracker(FakeClock())
        assert tracker.compliance("availability") == 1.0

    def test_burn_rate_zero_on_empty_window(self):
        tracker = _tracker(FakeClock())
        assert tracker.burn_rate("availability") == 0.0


class TestBurnRateAlerting:
    def test_sustained_misses_fire_one_alert(self):
        clock = FakeClock()
        tracker = _tracker(clock)
        # A 2x-deadline stall: every request misses its budget.  Spread
        # over half the short window so both windows see the breach.
        fired = []
        for _ in range(40):
            tracker.record_request(answered=True, deadline_met=False,
                                   latency_ms=500.0)
            clock.advance(1.0)
            fired.extend(tracker.evaluate())
        assert [a.objective for a in fired].count("deadline_hit") == 1
        assert any(a.objective == "latency_p99" for a in fired)
        alert = next(a for a in fired if a.objective == "deadline_hit")
        assert alert.short_burn >= tracker.burn_threshold
        assert alert.long_burn >= tracker.burn_threshold

    def test_silent_on_fault_free_traffic(self):
        clock = FakeClock()
        tracker = _tracker(clock)
        for _ in range(200):
            tracker.record_request(answered=True, deadline_met=True,
                                   latency_ms=5.0)
            clock.advance(0.5)
            assert tracker.evaluate() == []
        assert tracker.alerts == []

    def test_no_alert_below_min_events(self):
        clock = FakeClock()
        tracker = _tracker(clock, min_events=50)
        for _ in range(30):
            tracker.record_request(answered=False)
            clock.advance(0.1)
        assert tracker.evaluate() == []

    def test_edge_triggered_refires_after_recovery(self):
        clock = FakeClock()
        tracker = _tracker(clock, short_window_s=12.0, long_window_s=24.0,
                           min_events=5)

        def burst(good):
            for _ in range(20):
                tracker.record_request(answered=good)
                clock.advance(0.5)
                tracker.evaluate()

        burst(good=False)                 # episode 1 fires
        burst(good=True)                  # recovery clears the edge
        clock.advance(30.0)               # windows fully drain
        burst(good=False)                 # episode 2 fires again
        availability = [a for a in tracker.alerts
                        if a.objective == "availability"]
        assert len(availability) == 2

    def test_single_bad_request_after_quiet_spell_does_not_page(self):
        clock = FakeClock()
        tracker = _tracker(clock, min_events=5)
        for _ in range(100):
            tracker.record_request(answered=True, deadline_met=True,
                                   latency_ms=1.0)
            clock.advance(1.0)
        tracker.record_request(answered=False)
        assert tracker.evaluate() == []   # long window still healthy


class TestSummary:
    def test_summary_shape(self):
        clock = FakeClock()
        tracker = _tracker(clock)
        for _ in range(30):
            tracker.record_request(answered=True, deadline_met=False,
                                   latency_ms=500.0)
            clock.advance(1.0)
            tracker.evaluate()
        summary = tracker.summary()
        assert set(summary["objectives"]) == {
            "availability", "deadline_hit", "latency_p99"}
        deadline = summary["objectives"]["deadline_hit"]
        assert deadline["events"] == 30
        assert deadline["compliance"] == 0.0
        assert not deadline["met"]
        assert deadline["alerts"] >= 1
        assert summary["alerts"][0]["objective"] in (
            "deadline_hit", "latency_p99")

    def test_alert_to_dict(self):
        alert = BurnRateAlert("deadline_hit", 12.0, 8.0, 7.0, 6.0,
                              60.0, 300.0)
        doc = alert.to_dict()
        assert doc["objective"] == "deadline_hit"
        assert doc["threshold"] == 6.0
