"""Collapsed Gibbs LDA substrate tests."""

import numpy as np
import pytest

from repro.baselines.lda import GibbsLDA


def two_topic_corpus(num_docs=20, rng_seed=0):
    """Docs are purely about words 0-4 (topic A) or 5-9 (topic B)."""
    rng = np.random.default_rng(rng_seed)
    docs = []
    for i in range(num_docs):
        base = 0 if i % 2 == 0 else 5
        docs.append(list(rng.integers(base, base + 5, size=30)))
    return docs


class TestFit:
    def test_recovers_two_topics(self):
        docs = two_topic_corpus()
        lda = GibbsLDA(num_topics=2, num_words=10, iterations=60,
                       seed=0).fit(docs)
        phi = lda.phi
        # One topic should concentrate on the low words, the other on
        # the high words.
        low_mass = phi[:, :5].sum(axis=1)
        assert low_mass.max() > 0.9
        assert low_mass.min() < 0.1

    def test_same_group_docs_share_topics(self):
        docs = two_topic_corpus()
        lda = GibbsLDA(num_topics=2, num_words=10, iterations=60,
                       seed=0).fit(docs)
        theta = lda.theta
        even_topic = theta[0].argmax()
        assert theta[2].argmax() == even_topic
        assert theta[1].argmax() != even_topic

    def test_distributions_normalized(self):
        lda = GibbsLDA(num_topics=3, num_words=10, iterations=10,
                       seed=0).fit(two_topic_corpus())
        np.testing.assert_allclose(lda.theta.sum(axis=1), 1.0)
        np.testing.assert_allclose(lda.phi.sum(axis=1), 1.0)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            GibbsLDA(num_topics=2, num_words=5).fit([])

    def test_out_of_range_word_rejected(self):
        with pytest.raises(IndexError):
            GibbsLDA(num_topics=2, num_words=5).fit([[7]])

    def test_empty_document_allowed(self):
        lda = GibbsLDA(num_topics=2, num_words=10, iterations=5,
                       seed=0).fit([[0, 1], []])
        assert lda.theta.shape == (2, 2)


class TestInference:
    def test_fold_in_matches_training_topic(self):
        docs = two_topic_corpus()
        lda = GibbsLDA(num_topics=2, num_words=10, iterations=60,
                       seed=0).fit(docs)
        low_doc = [0, 1, 2, 3, 4] * 6
        theta = lda.infer_document(low_doc)
        low_topic = lda.phi[:, :5].sum(axis=1).argmax()
        assert theta.argmax() == low_topic

    def test_empty_document_uniform(self):
        lda = GibbsLDA(num_topics=4, num_words=10, iterations=5,
                       seed=0).fit(two_topic_corpus())
        np.testing.assert_allclose(lda.infer_document([]), 0.25)

    def test_properties_require_fit(self):
        lda = GibbsLDA(num_topics=2, num_words=5)
        with pytest.raises(RuntimeError):
            lda.theta
        with pytest.raises(RuntimeError):
            lda.infer_document([0])


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(num_topics=0, num_words=5),
        dict(num_topics=2, num_words=0),
        dict(num_topics=2, num_words=5, alpha=0),
        dict(num_topics=2, num_words=5, beta=-1),
        dict(num_topics=2, num_words=5, iterations=0),
    ])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            GibbsLDA(**kwargs)
