"""Autograd op profiler: patching, attribution, restoration."""

import numpy as np
import pytest

from repro.nn.profile import PROFILED_OPS, OpProfile, profile_ops
from repro.nn.tensor import Tensor
from repro.obs.metrics import MetricsRegistry


def _originals():
    return {op: Tensor.__dict__[op] for op in PROFILED_OPS}


class TestPatching:
    def test_ops_restored_after_block(self):
        before = _originals()
        with profile_ops():
            (Tensor(np.ones(3)) * 2.0).sum()
        assert _originals() == before

    def test_ops_restored_after_exception(self):
        before = _originals()
        with pytest.raises(RuntimeError):
            with profile_ops():
                raise RuntimeError("boom")
        assert _originals() == before

    def test_not_reentrant(self):
        ctx = profile_ops()
        with ctx:
            with pytest.raises(RuntimeError):
                ctx.__enter__()

    def test_unprofiled_runs_are_untouched(self):
        with profile_ops() as profile:
            (Tensor(np.ones(2)) + 1.0).sum()
        calls_inside = sum(s.calls for s in profile.stats.values())
        (Tensor(np.ones(2)) + 1.0).sum()  # outside: must not record
        assert sum(s.calls for s in profile.stats.values()) == calls_inside


class TestAttribution:
    def test_forward_ops_recorded(self):
        with profile_ops() as profile:
            a = Tensor(np.ones((4, 4)))
            b = Tensor(np.ones((4, 4)))
            (a @ b).relu().sum()
        assert profile.stats["__matmul__"].calls == 1
        assert profile.stats["relu"].calls == 1
        assert profile.stats["sum"].calls == 1
        assert profile.stats["__matmul__"].bytes_allocated > 0

    def test_backward_time_attributed(self):
        with profile_ops() as profile:
            x = Tensor(np.ones(5), requires_grad=True)
            (x * 3.0).sum().backward()
        assert profile.stats["__mul__"].backward_calls >= 1
        assert profile.stats["sum"].backward_calls >= 1

    def test_composite_ops_report_self_time(self):
        # mean is implemented via sum + mul; total forward time must not
        # double count — the sum across ops equals instrumented time.
        with profile_ops() as profile:
            Tensor(np.ones(1000)).mean()
        fwd = {name: stat.forward_seconds
               for name, stat in profile.stats.items()}
        assert "mean" in fwd and "sum" in fwd
        for seconds in fwd.values():
            assert seconds >= 0.0

    def test_gradients_match_unprofiled_run(self):
        def grad():
            x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
            ((x * x).sum()).backward()
            return x.grad.copy()

        expected = grad()
        with profile_ops():
            profiled = grad()
        np.testing.assert_allclose(profiled, expected)


class TestReporting:
    def _profiled(self):
        with profile_ops() as profile:
            x = Tensor(np.ones((8, 8)), requires_grad=True)
            (x @ x).sum().backward()
        return profile

    def test_report_table(self):
        report = self._profiled().report()
        assert "__matmul__" in report
        assert "TOTAL" in report

    def test_report_top_limits_rows(self):
        profile = self._profiled()
        all_rows = len(profile.report().splitlines())
        top_rows = len(profile.report(top=1).splitlines())
        assert top_rows <= all_rows

    def test_to_registry_exports_labelled_series(self):
        registry = MetricsRegistry()
        self._profiled().to_registry(registry)
        assert registry.counter("nn.op.calls", op="__matmul__").value == 1
        assert registry.counter("nn.op.alloc_bytes",
                                op="__matmul__").value > 0

    def test_empty_profile_totals_are_zero(self):
        profile = OpProfile()
        assert profile.total_forward_seconds == 0.0
        assert profile.total_bytes_allocated == 0
