"""IndexMap / DatasetIndex tests."""

import pytest

from repro.data.vocabulary import DatasetIndex, IndexMap


class TestIndexMap:
    def test_first_seen_order(self):
        m = IndexMap(["c", "a", "b"])
        assert m.index_of("c") == 0
        assert m.index_of("b") == 2

    def test_add_idempotent(self):
        m = IndexMap()
        assert m.add("x") == 0
        assert m.add("x") == 0
        assert len(m) == 1

    def test_key_of_inverse(self):
        m = IndexMap(["a", "b"])
        assert m.key_of(m.index_of("b")) == "b"

    def test_get_default(self):
        m = IndexMap(["a"])
        assert m.get("missing") == -1
        assert m.get("missing", -7) == -7

    def test_missing_index_of_raises(self):
        with pytest.raises(KeyError):
            IndexMap().index_of("nope")

    def test_contains_iter_keys(self):
        m = IndexMap(["a", "b"])
        assert "a" in m
        assert list(m) == ["a", "b"]
        keys = m.keys()
        keys.append("c")  # copy, not a view
        assert len(m) == 2


class TestDatasetIndex:
    def test_counts(self):
        idx = DatasetIndex(user_ids=[5, 9], poi_ids=[1, 2, 3],
                           words=["x"])
        assert idx.num_users == 2
        assert idx.num_pois == 3
        assert idx.num_words == 1

    def test_repr(self):
        idx = DatasetIndex([], [], [])
        assert "users=0" in repr(idx)
