"""Textual context graph and skipgram objective tests."""

import numpy as np
import pytest

from repro.data.records import POI
from repro.data.vocabulary import DatasetIndex
from repro.nn.layers import Embedding
from repro.nn.optim import Adam
from repro.text.context_graph import TextualContextGraph, build_city_context_graph
from repro.text.skipgram import pretrain_poi_embeddings, skipgram_batch_loss
from repro.data.sampling import ContextPairSampler


def word_world():
    pois = [
        POI(0, "a", (0, 0), ("park", "green")),
        POI(1, "a", (1, 1), ("park", "museum")),
        POI(2, "a", (2, 2), ("casino",)),
    ]
    index = DatasetIndex(user_ids=[], poi_ids=[0, 1, 2],
                         words=["casino", "green", "museum", "park"])
    return pois, index


class TestContextGraph:
    def test_counts(self):
        pois, index = word_world()
        graph = TextualContextGraph(pois, index)
        assert graph.num_poi_nodes == 3
        assert graph.num_word_nodes == 4
        assert graph.num_edges == 5

    def test_words_of_poi(self):
        pois, index = word_world()
        graph = TextualContextGraph(pois, index)
        park = index.words.index_of("park")
        green = index.words.index_of("green")
        assert graph.words_of_poi(0) == sorted([park, green])

    def test_pois_of_word(self):
        pois, index = word_world()
        graph = TextualContextGraph(pois, index)
        park = index.words.index_of("park")
        assert graph.pois_of_word(park) == [0, 1]

    def test_average_poi_degree(self):
        pois, index = word_world()
        graph = TextualContextGraph(pois, index)
        np.testing.assert_allclose(graph.average_poi_degree(), 5 / 3)

    def test_unknown_words_skipped(self):
        pois = [POI(0, "a", (0, 0), ("park", "zzz-unknown"))]
        index = DatasetIndex([], [0], ["park"])
        graph = TextualContextGraph(pois, index)
        assert graph.num_edges == 1

    def test_empty_inputs_rejected(self):
        _, index = word_world()
        with pytest.raises(ValueError):
            TextualContextGraph([], index)

    def test_unknown_poi_rejected(self):
        pois = [POI(99, "a", (0, 0), ("park",))]
        index = DatasetIndex([], [0], ["park"])
        with pytest.raises(KeyError):
            TextualContextGraph(pois, index)

    def test_build_city_graph(self, tiny_split):
        index = tiny_split.train.build_index()
        graph = build_city_context_graph(tiny_split.train, index,
                                         "shelbyville")
        assert graph.num_poi_nodes == len(
            tiny_split.train.pois_in_city("shelbyville"))


class TestSkipgram:
    def test_loss_shape_and_finite(self):
        poi_emb = Embedding(5, 8, rng=0)
        word_emb = Embedding(6, 8, rng=1)
        loss = skipgram_batch_loss(
            poi_emb, word_emb,
            poi_idx=np.array([0, 1]),
            pos_word_idx=np.array([2, 3]),
            neg_word_idx=np.array([[0, 1], [4, 5]]),
        )
        assert np.isfinite(loss.item())

    def test_training_reduces_loss(self):
        pois, index = word_world()
        graph = TextualContextGraph(pois, index)
        sampler = ContextPairSampler(graph.edges, index.num_words,
                                     num_negatives=2, rng=0)
        poi_emb = Embedding(3, 8, rng=0)
        word_emb = Embedding(4, 8, rng=1)
        opt = Adam(poi_emb.parameters() + word_emb.parameters(), lr=0.05)
        history = pretrain_poi_embeddings(sampler, poi_emb, word_emb, opt,
                                          epochs=30, batch_size=8)
        assert history[-1] < history[0]

    def test_shared_context_pois_converge(self):
        """POIs 0 and 1 share 'park'; both should sit nearer each other
        than either sits to the park-less casino POI."""
        pois, index = word_world()
        graph = TextualContextGraph(pois, index)
        sampler = ContextPairSampler(graph.edges, index.num_words,
                                     num_negatives=2, rng=0)
        poi_emb = Embedding(3, 8, rng=0)
        word_emb = Embedding(4, 8, rng=1)
        opt = Adam(poi_emb.parameters() + word_emb.parameters(), lr=0.05)
        pretrain_poi_embeddings(sampler, poi_emb, word_emb, opt,
                                epochs=120, batch_size=8)
        e = poi_emb.weight.data
        e = e / np.linalg.norm(e, axis=1, keepdims=True)
        sim_01 = e[0] @ e[1]
        sim_02 = e[0] @ e[2]
        assert sim_01 > sim_02
