"""Fault-plan tests: deterministic lookup and in-process execution."""

import multiprocessing as mp
import signal
import time

import pytest

from repro.reliability import Fault, FaultPlan


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode", worker=0, step=0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            Fault.crash(worker=-1, step=0)
        with pytest.raises(ValueError):
            Fault.crash(worker=0, step=-2)

    def test_hang_needs_duration(self):
        with pytest.raises(ValueError, match="seconds"):
            Fault("hang", worker=0, step=0, seconds=0.0)


class TestFaultPlan:
    def test_lookup_by_coordinate(self):
        plan = FaultPlan([Fault.crash(1, 5), Fault.nan_grad(1, 5),
                          Fault.delay(0, 2, 0.01)])
        assert len(plan.lookup(1, 5)) == 2
        assert len(plan.lookup(0, 2)) == 1
        assert plan.lookup(0, 5) == []
        assert len(plan) == 3

    def test_wants_nan_gradients(self):
        plan = FaultPlan([Fault.nan_grad(2, 7)])
        assert plan.wants_nan_gradients(2, 7)
        assert not plan.wants_nan_gradients(2, 8)
        assert not plan.wants_nan_gradients(1, 7)

    def test_delay_sleeps(self):
        plan = FaultPlan([Fault.delay(0, 3, 0.05)])
        started = time.perf_counter()
        plan.execute_pre_step(0, 3)
        assert time.perf_counter() - started >= 0.04
        # Off-coordinate execution is a no-op.
        started = time.perf_counter()
        plan.execute_pre_step(0, 4)
        assert time.perf_counter() - started < 0.04

    def test_crash_sigkills_the_process(self):
        plan = FaultPlan([Fault.crash(0, 0)])
        ctx = mp.get_context("fork")
        process = ctx.Process(target=plan.execute_pre_step, args=(0, 0))
        process.start()
        process.join(timeout=10)
        assert process.exitcode == -signal.SIGKILL

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan([Fault.hang(1, 2, 0.5), Fault.nan_grad(0, 1)])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.wants_nan_gradients(0, 1)
        assert clone.lookup(1, 2)[0].seconds == 0.5
