"""Fault-plan tests: deterministic lookup and in-process execution."""

import multiprocessing as mp
import signal
import time

import pytest

from repro.reliability import Fault, FaultPlan


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode", worker=0, step=0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            Fault.crash(worker=-1, step=0)
        with pytest.raises(ValueError):
            Fault.crash(worker=0, step=-2)

    def test_hang_needs_duration(self):
        with pytest.raises(ValueError, match="seconds"):
            Fault("hang", worker=0, step=0, seconds=0.0)


class TestFaultPlan:
    def test_lookup_by_coordinate(self):
        plan = FaultPlan([Fault.crash(1, 5), Fault.nan_grad(1, 5),
                          Fault.delay(0, 2, 0.01)])
        assert len(plan.lookup(1, 5)) == 2
        assert len(plan.lookup(0, 2)) == 1
        assert plan.lookup(0, 5) == []
        assert len(plan) == 3

    def test_wants_nan_gradients(self):
        plan = FaultPlan([Fault.nan_grad(2, 7)])
        assert plan.wants_nan_gradients(2, 7)
        assert not plan.wants_nan_gradients(2, 8)
        assert not plan.wants_nan_gradients(1, 7)

    def test_delay_sleeps(self):
        plan = FaultPlan([Fault.delay(0, 3, 0.05)])
        started = time.perf_counter()
        plan.execute_pre_step(0, 3)
        assert time.perf_counter() - started >= 0.04
        # Off-coordinate execution is a no-op.
        started = time.perf_counter()
        plan.execute_pre_step(0, 4)
        assert time.perf_counter() - started < 0.04

    def test_crash_sigkills_the_process(self):
        plan = FaultPlan([Fault.crash(0, 0)])
        ctx = mp.get_context("fork")
        process = ctx.Process(target=plan.execute_pre_step, args=(0, 0))
        process.start()
        process.join(timeout=10)
        assert process.exitcode == -signal.SIGKILL

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan([Fault.hang(1, 2, 0.5), Fault.nan_grad(0, 1)])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.wants_nan_gradients(0, 1)
        assert clone.lookup(1, 2)[0].seconds == 0.5


class TestWindowFaultValidation:
    def test_unknown_kind_rejected(self):
        from repro.reliability import WindowFault

        with pytest.raises(ValueError, match="unknown window fault kind"):
            WindowFault("meteor", worker=0, start=0, stop=1)

    def test_window_bounds_rejected(self):
        from repro.reliability import WindowFault

        with pytest.raises(ValueError):
            WindowFault.slow_shard(0, 5, 5, 0.1)       # empty window
        with pytest.raises(ValueError):
            WindowFault.slow_shard(0, -1, 5, 0.1)
        with pytest.raises(ValueError):
            WindowFault.crash_under_load(-1, 0, 1)

    def test_delay_kinds_need_positive_seconds(self):
        from repro.reliability import WindowFault

        for kind in ("slow", "jitter", "flap"):
            with pytest.raises(ValueError, match="seconds"):
                WindowFault(kind, worker=0, start=0, stop=1, seconds=0.0)
        with pytest.raises(ValueError, match="period"):
            WindowFault.flapping(0, 0, 4, 0.1, period=0)


class TestWindowFaultBehaviour:
    def test_active_only_inside_the_window_on_the_right_shard(self):
        from repro.reliability import WindowFault

        fault = WindowFault.slow_shard(1, 3, 6, 0.2)
        assert not fault.active(1, 2)
        assert fault.active(1, 3)
        assert fault.active(1, 5)
        assert not fault.active(1, 6)       # stop is exclusive
        assert not fault.active(0, 4)       # wrong shard

    def test_slow_adds_constant_delay(self):
        from repro.reliability import WindowFault

        fault = WindowFault.slow_shard(0, 0, 10, 0.25)
        assert fault.delay_seconds(0) == 0.25
        assert fault.delay_seconds(9) == 0.25

    def test_jitter_is_deterministic_bounded_and_seed_sensitive(self):
        from repro.reliability import WindowFault

        a = WindowFault.jittered_delay(0, 0, 100, 0.5, seed=1)
        b = WindowFault.jittered_delay(0, 0, 100, 0.5, seed=2)
        delays_a = [a.delay_seconds(seq) for seq in range(20)]
        assert delays_a == [a.delay_seconds(seq) for seq in range(20)]
        assert all(0.0 <= d <= 0.5 for d in delays_a)
        assert len(set(delays_a)) > 1       # actually varies by request
        assert delays_a != [b.delay_seconds(seq) for seq in range(20)]

    def test_flap_alternates_slow_and_fast_half_periods(self):
        from repro.reliability import WindowFault

        fault = WindowFault.flapping(0, 4, 100, 0.1, period=2)
        # Phases count from the window start: 2 slow, 2 fast, 2 slow...
        delays = [fault.delay_seconds(seq) for seq in range(4, 12)]
        assert delays == [0.1, 0.1, 0.0, 0.0, 0.1, 0.1, 0.0, 0.0]

    def test_crash_adds_no_delay(self):
        from repro.reliability import WindowFault

        assert WindowFault.crash_under_load(0, 0, 1).delay_seconds(0) == 0.0


class TestChaosPlan:
    def test_active_windows_lookup(self):
        from repro.reliability import ChaosPlan, WindowFault

        plan = ChaosPlan(windows=[
            WindowFault.slow_shard(0, 0, 5, 0.1),
            WindowFault.jittered_delay(0, 3, 8, 0.1),
            WindowFault.slow_shard(1, 0, 5, 0.1)])
        assert len(plan.active_windows(0, 4)) == 2
        assert len(plan.active_windows(0, 6)) == 1
        assert len(plan.active_windows(1, 1)) == 1
        assert plan.active_windows(2, 0) == []

    def test_delays_sum_across_overlapping_windows(self, monkeypatch):
        from repro.reliability import ChaosPlan, WindowFault

        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        plan = ChaosPlan(windows=[
            WindowFault.slow_shard(0, 0, 5, 0.2),
            WindowFault.slow_shard(0, 2, 5, 0.3)])
        plan.execute_pre_step(0, 3)
        assert slept == [pytest.approx(0.5)]
        plan.execute_pre_step(0, 1)
        assert slept[-1] == pytest.approx(0.2)
        plan.execute_pre_step(0, 7)         # outside every window
        assert len(slept) == 2

    def test_point_faults_still_fire(self, monkeypatch):
        from repro.reliability import ChaosPlan, Fault, WindowFault

        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        plan = ChaosPlan(faults=[Fault.delay(0, 3, 0.05)],
                         windows=[WindowFault.slow_shard(0, 0, 5, 0.2)])
        plan.execute_pre_step(0, 3)
        # Window delay in one sleep, then the point fault's own sleep.
        assert slept == [pytest.approx(0.2), pytest.approx(0.05)]
        assert plan.wants_nan_gradients(0, 3) is False

    def test_crash_window_sigkills_under_load(self):
        from repro.reliability import ChaosPlan, WindowFault

        plan = ChaosPlan(windows=[WindowFault.crash_under_load(0, 2, 3)])
        ctx = mp.get_context("fork")

        def serve(plan):
            for seq in range(5):
                plan.execute_pre_step(0, seq)

        process = ctx.Process(target=serve, args=(plan,))
        process.start()
        process.join(timeout=10)
        assert process.exitcode == -signal.SIGKILL

    def test_chaos_plan_is_picklable(self):
        import pickle

        from repro.reliability import ChaosPlan, WindowFault

        plan = ChaosPlan(windows=[WindowFault.flapping(1, 0, 9, 0.1)])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.windows[0].kind == "flap"
        assert clone.active_windows(1, 0)
