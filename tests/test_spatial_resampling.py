"""Density-based resampling tests (Eqs. 6 & 9, punishment α)."""

import numpy as np
import pytest

from repro.spatial.resampling import DensityResampler, empirical_poi_sample

from tests.test_spatial_density import skewed_model, model  # fixtures


class TestPlan:
    def test_alpha_zero_draws_nothing(self, skewed_model):
        plan = DensityResampler(skewed_model, alpha=0.0, rng=0).plan()
        assert plan.num_draws == 0
        assert len(plan.poi_ids) == 0
        assert plan.total_deficit == 36

    def test_alpha_scales_draws(self, skewed_model):
        plan_half = DensityResampler(skewed_model, alpha=0.5, rng=0).plan()
        plan_full = DensityResampler(skewed_model, alpha=1.0, rng=0).plan()
        assert plan_half.num_draws == 18
        assert plan_full.num_draws == 36

    def test_draws_favor_sparse_region(self, skewed_model):
        plan = DensityResampler(skewed_model, alpha=1.0, rng=0).plan()
        seg = skewed_model.segmentation
        sparse_region = seg.region_of_poi[2]
        regions = [seg.region_of_poi[int(p)] for p in plan.poi_ids]
        sparse_share = np.mean([r == sparse_region for r in regions])
        assert sparse_share > 0.7

    def test_no_deficit_no_draws(self, model):
        plan = DensityResampler(model, alpha=1.0, rng=0).plan()
        assert plan.num_draws == 0

    def test_invalid_alpha(self, skewed_model):
        with pytest.raises(ValueError):
            DensityResampler(skewed_model, alpha=1.5)


class TestBalancedSample:
    def test_shape_and_membership(self, skewed_model):
        sample = DensityResampler(skewed_model, rng=0).balanced_poi_sample(200)
        assert sample.shape == (200,)
        assert set(sample.tolist()) <= {0, 1, 2, 3}

    def test_balances_region_frequencies(self, skewed_model):
        sample = DensityResampler(skewed_model, rng=0).balanced_poi_sample(2000)
        seg = skewed_model.segmentation
        sparse_region = seg.region_of_poi[2]
        share = np.mean([seg.region_of_poi[int(p)] == sparse_region
                         for p in sample])
        # Eq. 8 gives the sparse region 10/11 of draws.
        assert 0.85 < share < 0.97

    def test_invalid_size(self, skewed_model):
        with pytest.raises(ValueError):
            DensityResampler(skewed_model, rng=0).balanced_poi_sample(0)

    def test_deterministic_per_seed(self, skewed_model):
        a = DensityResampler(skewed_model, rng=9).balanced_poi_sample(50)
        b = DensityResampler(skewed_model, rng=9).balanced_poi_sample(50)
        np.testing.assert_array_equal(a, b)


class TestEmpiricalSample:
    def test_follows_raw_counts(self, skewed_model):
        sample = empirical_poi_sample(skewed_model, 2000, rng=0)
        # Dense POIs 0/1 hold 40 of 44 check-ins ≈ 91%.
        dense_share = np.mean([int(p) in (0, 1) for p in sample])
        assert 0.85 < dense_share < 0.96

    def test_contrast_with_balanced(self, skewed_model):
        """The two samplers must produce opposite spatial skews."""
        raw = empirical_poi_sample(skewed_model, 1000, rng=0)
        balanced = DensityResampler(skewed_model,
                                    rng=0).balanced_poi_sample(1000)
        seg = skewed_model.segmentation
        sparse = seg.region_of_poi[2]
        raw_share = np.mean([seg.region_of_poi[int(p)] == sparse for p in raw])
        bal_share = np.mean([seg.region_of_poi[int(p)] == sparse
                             for p in balanced])
        assert bal_share > 0.5 > raw_share
