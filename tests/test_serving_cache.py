"""TopKCache tests: LRU eviction, TTL expiry, user invalidation."""

import pytest

from repro.serving.cache import TopKCache


class FakeClock:
    """Deterministic time source for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasics:
    def test_miss_then_hit(self):
        cache = TopKCache(max_size=4)
        assert cache.get(1, 10) is None
        cache.put(1, 10, ["a"])
        assert cache.get(1, 10) == ["a"]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_keys_distinguish_k_and_exclusion(self):
        cache = TopKCache(max_size=8)
        cache.put(1, 10, "k10")
        cache.put(1, 5, "k5")
        cache.put(1, 10, "raw", exclude_visited=False)
        assert cache.get(1, 10) == "k10"
        assert cache.get(1, 5) == "k5"
        assert cache.get(1, 10, exclude_visited=False) == "raw"

    def test_put_replaces(self):
        cache = TopKCache(max_size=4)
        cache.put(1, 10, "old")
        cache.put(1, 10, "new")
        assert cache.get(1, 10) == "new"
        assert len(cache) == 1

    def test_contains_by_user(self):
        cache = TopKCache()
        cache.put(7, 10, "x")
        assert 7 in cache
        assert 8 not in cache

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TopKCache(max_size=0)
        with pytest.raises(ValueError):
            TopKCache(ttl_seconds=0)


class TestLRU:
    def test_least_recently_used_evicted(self):
        cache = TopKCache(max_size=2)
        cache.put(1, 10, "one")
        cache.put(2, 10, "two")
        cache.get(1, 10)           # 1 is now most recent
        cache.put(3, 10, "three")  # evicts 2
        assert cache.get(2, 10) is None
        assert cache.get(1, 10) == "one"
        assert cache.get(3, 10) == "three"
        assert cache.evictions == 1

    def test_eviction_cleans_user_index(self):
        cache = TopKCache(max_size=1)
        cache.put(1, 10, "one")
        cache.put(2, 10, "two")
        assert 1 not in cache
        assert cache.invalidate(1) == 0


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = TopKCache(max_size=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 10, "fresh")
        clock.advance(9.0)
        assert cache.get(1, 10) == "fresh"
        clock.advance(2.0)
        assert cache.get(1, 10) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = TopKCache(max_size=4, ttl_seconds=None, clock=clock)
        cache.put(1, 10, "forever")
        clock.advance(1e9)
        assert cache.get(1, 10) == "forever"

    def test_reinsert_resets_age(self):
        clock = FakeClock()
        cache = TopKCache(max_size=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 10, "v1")
        clock.advance(8.0)
        cache.put(1, 10, "v2")
        clock.advance(8.0)
        assert cache.get(1, 10) == "v2"


class TestInvalidation:
    def test_invalidate_drops_all_entries_of_user(self):
        cache = TopKCache(max_size=8)
        cache.put(1, 10, "a")
        cache.put(1, 5, "b")
        cache.put(2, 10, "c")
        assert cache.invalidate(1) == 2
        assert cache.get(1, 10) is None
        assert cache.get(1, 5) is None
        assert cache.get(2, 10) == "c"

    def test_invalidate_unknown_user_is_noop(self):
        cache = TopKCache()
        assert cache.invalidate(42) == 0

    def test_invalidate_all(self):
        cache = TopKCache(max_size=8)
        cache.put(1, 10, "a")
        cache.put(2, 10, "b")
        assert cache.invalidate_all() == 2
        assert len(cache) == 0
        assert cache.get(1, 10) is None


class TestStats:
    def test_stats_shape(self):
        cache = TopKCache(max_size=3, ttl_seconds=60.0)
        cache.put(1, 10, "a")
        cache.get(1, 10)
        cache.get(2, 10)
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["max_size"] == 3
        assert stats["ttl_seconds"] == 60.0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestStaleReads:
    def test_get_stale_returns_fresh_flag(self):
        clock = FakeClock()
        cache = TopKCache(max_size=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 10, "v")
        assert cache.get_stale(1, 10) == ("v", True)
        clock.advance(11.0)
        assert cache.get_stale(1, 10) == ("v", False)
        assert cache.get_stale(2, 10) is None
        assert cache.hits == 1 and cache.stale_hits == 1

    def test_stale_entry_is_kept_for_revalidation(self):
        clock = FakeClock()
        cache = TopKCache(max_size=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 10, "old")
        clock.advance(11.0)
        # A stale read neither drops the entry nor counts an expiry...
        assert cache.get_stale(1, 10) == ("old", False)
        assert len(cache) == 1 and cache.expirations == 0
        # ...so a later revalidation overwrites it in place.
        cache.put(1, 10, "new")
        assert cache.get_stale(1, 10) == ("new", True)

    def test_plain_get_still_drops_expired_entries(self):
        clock = FakeClock()
        cache = TopKCache(max_size=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 10, "v")
        clock.advance(11.0)
        assert cache.get(1, 10) is None
        assert cache.get_stale(1, 10) is None

    def test_no_ttl_reads_are_always_fresh(self):
        cache = TopKCache(max_size=4, ttl_seconds=None)
        cache.put(1, 10, "v")
        assert cache.get_stale(1, 10) == ("v", True)

    def test_stale_hits_surface_in_stats(self):
        clock = FakeClock()
        cache = TopKCache(max_size=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 10, "v")
        clock.advance(11.0)
        cache.get_stale(1, 10)
        assert cache.stats()["stale_hits"] == 1
