"""Benchmark harness: payload shapes and the CI regression gate."""

import numpy as np
import pytest

from repro.perf.bench import (
    _resolve,
    bench_embedding_backward,
    bench_train_step,
    bench_transport,
    check_against_baseline,
    check_fleet_against_baseline,
)


class TestResolve:
    def test_nested_lookup(self):
        payload = {"a": {"b": {"c": 1.5}}}
        assert _resolve(payload, "a.b.c") == 1.5

    def test_missing_path_returns_none(self):
        assert _resolve({"a": {}}, "a.b.c") is None
        assert _resolve({"a": 3}, "a.b") is None


class TestCheckAgainstBaseline:
    def test_passes_within_tolerance(self):
        current = {"train_step": {"speedup": 1.9}}
        baseline = {"tolerance": 0.2,
                    "metrics": {"train_step.speedup": 2.0}}
        assert check_against_baseline(current, baseline) == []

    def test_flags_regression_below_floor(self):
        current = {"train_step": {"speedup": 1.2}}
        baseline = {"tolerance": 0.2,
                    "metrics": {"train_step.speedup": 2.0}}
        messages = check_against_baseline(current, baseline)
        assert len(messages) == 1
        assert "train_step.speedup" in messages[0]
        assert "1.200" in messages[0]

    def test_missing_metric_is_a_regression(self):
        messages = check_against_baseline(
            {}, {"tolerance": 0.1, "metrics": {"gone.speedup": 2.0}})
        assert messages == ["gone.speedup: missing from benchmark output"]

    def test_non_numeric_metric_is_a_regression(self):
        current = {"train_step": {"speedup": "fast"}}
        baseline = {"metrics": {"train_step.speedup": 2.0}}
        assert len(check_against_baseline(current, baseline)) == 1

    def test_zero_tolerance_is_exact_floor(self):
        current = {"x": 1.0}
        assert check_against_baseline(
            current, {"metrics": {"x": 1.0}}) == []
        assert len(check_against_baseline(
            current, {"metrics": {"x": 1.0000001}})) == 1

    def test_invalid_tolerance_raises(self):
        with pytest.raises(ValueError):
            check_against_baseline({}, {"tolerance": 1.0, "metrics": {}})
        with pytest.raises(ValueError):
            check_against_baseline({}, {"tolerance": -0.1, "metrics": {}})

    def test_empty_baseline_always_passes(self):
        assert check_against_baseline({"anything": 1}, {}) == []


class TestCheckFleetAgainstBaseline:
    SPEC = {"tolerance": 0.0, "min_cpus": 3,
            "metrics": {"fleet.shards.2.speedup_vs_single": 1.6}}

    def _payload(self, cpus, speedup):
        return {"fleet": {"cpu_count": cpus,
                          "shards": {"2": {"speedup_vs_single": speedup}}}}

    def test_skips_below_cpu_floor(self):
        regressions, skip = check_fleet_against_baseline(
            self._payload(cpus=1, speedup=0.4), self.SPEC)
        assert regressions == []
        assert skip is not None and "1 CPU" in skip

    def test_gates_at_or_above_cpu_floor(self):
        regressions, skip = check_fleet_against_baseline(
            self._payload(cpus=4, speedup=1.7), self.SPEC)
        assert (regressions, skip) == ([], None)
        regressions, skip = check_fleet_against_baseline(
            self._payload(cpus=4, speedup=1.2), self.SPEC)
        assert skip is None
        assert len(regressions) == 1
        assert "speedup_vs_single" in regressions[0]

    def test_missing_fleet_payload_skips_when_starved(self):
        # No fleet section at all reads as cpu_count 0 -> skip, never a
        # silent pass of the metrics.
        regressions, skip = check_fleet_against_baseline({}, self.SPEC)
        assert regressions == [] and skip is not None


class TestCommittedBaselines:
    def test_baselines_file_is_well_formed(self):
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "benchmarks" / \
            "perf" / "baselines.json"
        baselines = json.loads(path.read_text())
        assert set(baselines) == {"tiny", "full"}
        for profile in baselines.values():
            for name, spec in profile.items():
                assert 0.0 <= spec["tolerance"] < 1.0
                assert spec["metrics"]
                for dotted, value in spec["metrics"].items():
                    if name == "chaos":
                        # Chaos rows gate rates (availability,
                        # deadline-hit), not speedups: floors in (0, 1].
                        assert dotted.startswith("chaos.")
                        assert 0.0 < value <= 1.0
                    else:
                        assert ".speedup" in dotted
                        assert value > 0

    def test_full_fleet_bar_requires_multicore_and_1_6x(self):
        """The 2-shard scaling bar is >= 1.6x, gated only where the
        hardware can express it (min_cpus floor)."""
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "benchmarks" / \
            "perf" / "baselines.json"
        spec = json.loads(path.read_text())["full"]["fleet"]
        floor = spec["metrics"]["fleet.shards.2.speedup_vs_single"] \
            * (1.0 - spec["tolerance"])
        assert floor >= 1.6
        assert spec["min_cpus"] >= 3

    def test_full_profile_enforces_acceptance_bar(self):
        """The committed floor for the 2-worker train step is >= 1.5x."""
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "benchmarks" / \
            "perf" / "baselines.json"
        spec = json.loads(path.read_text())["full"]["train"]
        floor = spec["metrics"]["train_step.speedup"] \
            * (1.0 - spec["tolerance"])
        assert floor >= 1.5


class TestMicrobenchSmoke:
    def test_embedding_backward_payload(self):
        result = bench_embedding_backward(num_embeddings=500, dim=8,
                                          batch=64, repeats=1)
        assert result["dense_ms"] > 0 and result["sparse_ms"] > 0
        assert result["speedup"] == pytest.approx(
            result["dense_ms"] / result["sparse_ms"])

    def test_transport_payload(self):
        result = bench_transport(num_embeddings=500, dim=8,
                                 touched_rows=64, repeats=2)
        assert result["pipe_ms"] > 0 and result["shm_ms"] > 0
        assert result["sparse_payload_bytes"] \
            < result["dense_payload_bytes"]

    def test_train_step_payload_single_worker(self):
        result = bench_train_step(workers=1, steps=2, scale=0.25,
                                  embedding_dim=8, batch_size=32,
                                  warmup_steps=1, rounds=1)
        assert result["workers"] == 1
        for leg in ("baseline", "optimized"):
            assert result[leg]["seconds_per_step"] > 0
        assert np.isfinite(result["speedup"])
