"""Metric primitives: thread safety, identity, and merge algebra."""

import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    metric_key,
    parse_metric_key,
)


class TestBuckets:
    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]

    def test_default_latency_buckets_cover_microseconds_to_half_second(self):
        assert LATENCY_BUCKETS_MS[0] == pytest.approx(0.001)
        assert LATENCY_BUCKETS_MS[-1] > 500.0

    @pytest.mark.parametrize("kwargs", [
        {"start": 0.0}, {"start": -1.0}, {"factor": 1.0}, {"count": 0},
    ])
    def test_invalid_bucket_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            exponential_buckets(**{"start": 1.0, "factor": 2.0,
                                   "count": 3, **kwargs})


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_roundtrip_and_merge(self):
        a, b = Counter(3), Counter(4)
        assert Counter.from_dict(a.to_dict()).value == 3
        assert a.merged_with(b).value == 7


class TestGauge:
    def test_set_tracks_updates(self):
        g = Gauge()
        g.set(1.0)
        g.set(-2.0)
        assert g.value == -2.0
        assert g.updates == 2

    def test_merge_keeps_most_updated_side(self):
        busy, idle = Gauge(), Gauge()
        busy.set(10.0)
        busy.set(5.0)
        idle.set(99.0)
        assert busy.merged_with(idle).value == 5.0

    def test_merge_is_commutative_and_associative(self):
        def gauge(value, updates):
            g = Gauge()
            for v in [0.0] * (updates - 1) + [value]:
                g.set(v)
            return g

        a, b, c = gauge(1.0, 2), gauge(2.0, 2), gauge(3.0, 1)
        assert a.merged_with(b).value == b.merged_with(a).value
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(b.merged_with(c))
        assert (left.value, left.updates) == (right.value, right.updates)


class TestHistogram:
    def test_observe_fills_buckets_and_totals(self):
        h = Histogram(bounds=[1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.total == pytest.approx(55.5)
        assert h.min == 0.5 and h.max == 50.0

    def test_lifetime_vs_window_means_diverge_after_rollover(self):
        h = Histogram(bounds=[100.0], window=2)
        h.observe(1000.0)          # rolls out of the window below
        h.observe(1.0)
        h.observe(3.0)
        assert h.window_count == 2
        assert h.window_mean == pytest.approx(2.0)
        assert h.lifetime_mean == pytest.approx(1004.0 / 3)

    def test_percentiles_use_the_window(self):
        h = Histogram(bounds=[100.0], window=4)
        for value in (1.0, 2.0, 3.0, 4.0):
            h.observe(value)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert h.percentile(50) in (2.0, 3.0)

    def test_roundtrip_preserves_everything(self):
        h = Histogram(bounds=[1.0, 2.0], window=8)
        for value in (0.5, 1.5, 9.0):
            h.observe(value)
        back = Histogram.from_dict(h.to_dict())
        assert back.bucket_counts == h.bucket_counts
        assert back.count == h.count
        assert back.total == pytest.approx(h.total)
        assert back.window_samples() == h.window_samples()

    def test_merge_requires_equal_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[1.0]).merged_with(Histogram(bounds=[2.0]))

    def test_merge_sums_totals_and_buckets_commutatively(self):
        a, b = Histogram(bounds=[1.0, 10.0]), Histogram(bounds=[1.0, 10.0])
        for value in (0.5, 5.0):
            a.observe(value)
        for value in (50.0, 0.1, 2.0):
            b.observe(value)
        ab, ba = a.merged_with(b), b.merged_with(a)
        assert ab.bucket_counts == ba.bucket_counts == [2, 2, 1]
        assert ab.count == ba.count == 5
        assert ab.total == pytest.approx(ba.total) == pytest.approx(57.6)
        assert ab.min == ba.min == 0.1
        assert ab.max == ba.max == 50.0
        assert ab.window_samples() == ba.window_samples()

    def test_threaded_observe_loses_nothing(self):
        h = Histogram(bounds=[0.5])

        def pound():
            for _ in range(500):
                h.observe(1.0)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 2000
        assert h.bucket_counts == [0, 2000]


class TestMetricKeys:
    def test_plain_and_labelled(self):
        assert metric_key("a.b", {}) == "a.b"
        key = metric_key("a.b", {"worker": "1", "city": "la"})
        assert key == 'a.b{city="la",worker="1"}'

    def test_parse_inverts(self):
        key = metric_key("x", {"op": "matmul"})
        assert parse_metric_key(key) == ("x", {"op": "matmul"})
        assert parse_metric_key("bare") == ("bare", {})


class TestMetricsRegistry:
    def test_get_or_create_shares_instruments(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", w="1") is not r.counter("a", w="2")

    def test_type_collision_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_roundtrip(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(1.5)
        r.histogram("h", bounds=[1.0]).observe(0.5)
        back = MetricsRegistry.from_dict(r.to_dict())
        assert back.counter("c").value == 3
        assert back.gauge("g").value == 1.5
        assert back.histogram("h", bounds=[1.0]).count == 1

    def test_merge_is_commutative_on_totals_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("steps").inc(5)
        b.counter("steps").inc(7)
        a.counter("only.a").inc(1)
        b.counter("only.b").inc(2)
        for value in (0.5, 5.0):
            a.histogram("lat", bounds=[1.0, 10.0]).observe(value)
        for value in (50.0, 0.2):
            b.histogram("lat", bounds=[1.0, 10.0]).observe(value)

        ab, ba = a.merged_with(b), b.merged_with(a)
        for merged in (ab, ba):
            assert merged.counter("steps").value == 12
            assert merged.counter("only.a").value == 1
            assert merged.counter("only.b").value == 2
            hist = merged.histogram("lat", bounds=[1.0, 10.0])
            assert hist.bucket_counts == [2, 1, 1]
            assert hist.total == pytest.approx(55.7)
        assert ab.to_dict() == ba.to_dict()

    def test_merge_all_matches_pairwise(self):
        regs = []
        for i in range(3):
            r = MetricsRegistry()
            r.counter("n").inc(i + 1)
            regs.append(r)
        assert MetricsRegistry.merge_all(regs).counter("n").value == 6

    def test_merge_does_not_mutate_inputs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.merged_with(b)
        assert a.counter("c").value == 1
        assert b.counter("c").value == 2
