"""Property-based tests (hypothesis) on core data structures & invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.data.vocabulary import IndexMap
from repro.eval.metrics import (
    average_precision_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.nn.tensor import Tensor, softplus, stable_sigmoid
from repro.spatial.segmentation import common_user_distance

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4):
    return arrays(np.float64,
                  array_shapes(min_dims=1, max_dims=2, max_side=max_side),
                  elements=st.floats(min_value=-10, max_value=10,
                                     allow_nan=False))


class TestTensorProperties:
    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, data):
        a = Tensor(data)
        b = Tensor(data * 0.5 + 1.0)
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_double_negation_identity(self, data):
        a = Tensor(data)
        np.testing.assert_allclose((-(-a)).data, data)

    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_sum_grad_is_ones(self, data):
        a = Tensor(data, requires_grad=True)
        a.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones_like(data))

    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_range(self, data):
        out = Tensor(data).sigmoid().data
        assert ((out > 0) & (out < 1)).all()

    @given(arrays(np.float64, st.integers(1, 20),
                  elements=st.floats(min_value=-500, max_value=500,
                                     allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_stable_sigmoid_matches_softplus_identity(self, data):
        # log(sigmoid(x)) == -softplus(-x) for all x
        lhs = np.log(np.clip(stable_sigmoid(data), 1e-300, None))
        rhs = -softplus(-data)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @given(small_arrays())
    @settings(max_examples=50, deadline=None)
    def test_reshape_roundtrip(self, data):
        a = Tensor(data)
        np.testing.assert_array_equal(
            a.reshape(-1).reshape(*data.shape).data, data
        )


class TestIndexMapProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000)))
    @settings(max_examples=100, deadline=None)
    def test_indices_contiguous_and_invertible(self, keys):
        m = IndexMap(keys)
        assert len(m) == len(set(keys))
        for key in set(keys):
            assert m.key_of(m.index_of(key)) == key
        indices = sorted(m.index_of(k) for k in set(keys))
        assert indices == list(range(len(m)))

    @given(st.lists(st.text(max_size=5)), st.text(max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_add_returns_stable_index(self, keys, probe):
        m = IndexMap(keys)
        first = m.add(probe)
        second = m.add(probe)
        assert first == second


ranked_and_relevant = st.tuples(
    st.lists(st.integers(0, 50), min_size=1, max_size=20, unique=True),
    st.sets(st.integers(0, 50), min_size=1, max_size=10),
    st.integers(1, 20),
)


class TestMetricProperties:
    @given(ranked_and_relevant)
    @settings(max_examples=200, deadline=None)
    def test_all_metrics_in_unit_interval(self, case):
        ranked, relevant, k = case
        for fn in (recall_at_k, precision_at_k, ndcg_at_k,
                   average_precision_at_k):
            assert 0.0 <= fn(ranked, relevant, k) <= 1.0

    @given(ranked_and_relevant)
    @settings(max_examples=200, deadline=None)
    def test_recall_monotone_in_k(self, case):
        ranked, relevant, k = case
        if k > 1:
            assert recall_at_k(ranked, relevant, k) >= \
                recall_at_k(ranked, relevant, k - 1)

    @given(st.sets(st.integers(0, 30), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_perfect_ranking_maximal(self, relevant):
        ranked = sorted(relevant)
        k = len(ranked)
        assert recall_at_k(ranked, relevant, k) == 1.0
        assert ndcg_at_k(ranked, relevant, k) == 1.0
        assert average_precision_at_k(ranked, relevant, k) == 1.0


class TestCommonUserDistanceProperties:
    @given(st.sets(st.integers(0, 30)), st.sets(st.integers(0, 30)))
    @settings(max_examples=200, deadline=None)
    def test_symmetric_and_bounded(self, a, b):
        d_ab = common_user_distance(a, b)
        d_ba = common_user_distance(b, a)
        assert d_ab == d_ba
        assert 0.0 <= d_ab <= 1.0

    @given(st.sets(st.integers(0, 30), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_self_distance_is_one(self, a):
        assert common_user_distance(a, a) == 1.0

    @given(st.sets(st.integers(0, 15), min_size=1),
           st.sets(st.integers(16, 30), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_disjoint_is_zero(self, a, b):
        assert common_user_distance(a, b) == 0.0
