"""ST-TransRec configuration tests."""

import pytest

from repro.core.config import (
    STTransRecConfig,
    foursquare_paper_config,
    yelp_paper_config,
)
from repro.core.variants import VARIANT_NAMES, variant_config


class TestValidation:
    def test_defaults_valid(self):
        STTransRecConfig()

    @pytest.mark.parametrize("field,value", [
        ("embedding_dim", 0),
        ("dropout", 1.5),
        ("learning_rate", 0),
        ("batch_size", -1),
        ("epochs", 0),
        ("num_negatives", 0),
        ("lambda_mmd", -1.0),
        ("lambda_text", -0.5),
        ("mmd_batch_size", 0),
        ("mmd_bandwidth", -2.0),
        ("mmd_estimator", "bogus"),
        ("interaction_features", "bogus"),
        ("resample_alpha", 2.0),
        ("segmentation_threshold", -0.1),
        ("pretrain_epochs", -1),
        ("user_anchor", -1.0),
        ("hidden_sizes", []),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            STTransRecConfig(**{field: value})


class TestTowerSizes:
    def test_paper_funnel_from_dim(self):
        assert STTransRecConfig(embedding_dim=64).tower_sizes() == \
            [128, 64, 32, 16]
        assert STTransRecConfig(embedding_dim=128).tower_sizes() == \
            [256, 128, 64, 32]

    def test_explicit_sizes_win(self):
        cfg = STTransRecConfig(hidden_sizes=[10, 5])
        assert cfg.tower_sizes() == [10, 5]

    def test_tiny_dim_floors_at_one(self):
        assert min(STTransRecConfig(embedding_dim=2).tower_sizes()) >= 1


class TestPaperPresets:
    def test_foursquare_preset(self):
        cfg = foursquare_paper_config()
        assert cfg.embedding_dim == 64
        assert cfg.dropout == 0.1
        assert cfg.segmentation_threshold == 0.10

    def test_yelp_preset(self):
        cfg = yelp_paper_config()
        assert cfg.embedding_dim == 128
        assert cfg.dropout == 0.2
        assert cfg.segmentation_threshold == 0.25

    def test_overrides_respected(self):
        cfg = foursquare_paper_config(epochs=3)
        assert cfg.epochs == 3


class TestVariants:
    def test_variant_names(self):
        assert VARIANT_NAMES == ("ST-TransRec", "ST-TransRec-1",
                                 "ST-TransRec-2", "ST-TransRec-3")

    def test_variant_1_drops_mmd_only(self):
        base = STTransRecConfig()
        v = variant_config("ST-TransRec-1", base)
        assert not v.use_mmd
        assert v.use_text
        assert v.resample_alpha == base.resample_alpha

    def test_variant_2_drops_text_only(self):
        v = variant_config("ST-TransRec-2", STTransRecConfig())
        assert v.use_mmd
        assert not v.use_text

    def test_variant_3_drops_resampling_only(self):
        v = variant_config("ST-TransRec-3", STTransRecConfig())
        assert v.use_mmd
        assert v.use_text
        assert v.resample_alpha == 0.0

    def test_full_model_is_copy(self):
        base = STTransRecConfig()
        v = variant_config("ST-TransRec", base)
        assert v == base
        assert v is not base

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            variant_config("ST-TransRec-9", STTransRecConfig())
