"""Event-log semantics: stamping, ordering, persistence, crash recovery."""

import json

import pytest

from repro.data.records import CheckinRecord
from repro.streaming import CheckinEvent, EventLog


class TestAppend:
    def test_seq_is_gapless_and_log_assigned(self):
        log = EventLog()
        events = [log.append(1, 10, "springfield", float(t))
                  for t in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert log.next_seq == 5

    def test_timestamp_regression_raises(self):
        log = EventLog()
        log.append(1, 10, "springfield", 5.0)
        with pytest.raises(ValueError, match="precedes"):
            log.append(1, 11, "springfield", 4.0)

    def test_equal_timestamps_allowed(self):
        log = EventLog()
        log.append(1, 10, "springfield", 5.0)
        event = log.append(2, 11, "springfield", 5.0)
        assert event.seq == 1

    def test_append_record_roundtrip(self):
        log = EventLog()
        record = CheckinRecord(user_id=7, poi_id=3, city="shelbyville",
                               timestamp=1.5)
        event = log.append_record(record)
        assert event.to_record() == record

    def test_extend_and_records(self):
        log = EventLog()
        records = [CheckinRecord(u, 1, "springfield", float(u))
                   for u in range(3)]
        log.extend(records)
        assert log.records() == records


class TestRead:
    def test_read_since_is_the_resume_point(self):
        log = EventLog()
        for t in range(6):
            log.append(1, t, "springfield", float(t))
        tail = log.read_since(4)
        assert [e.seq for e in tail] == [4, 5]
        assert log.read_since(6) == []
        with pytest.raises(ValueError):
            log.read_since(-1)

    def test_len_and_iter(self):
        log = EventLog()
        log.append(1, 1, "springfield", 0.0)
        log.append(2, 2, "springfield", 1.0)
        assert len(log) == 2
        assert [e.user_id for e in log] == [1, 2]


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            for t in range(4):
                log.append(t, t + 10, "springfield", float(t))
            events = log.events()
        reopened = EventLog.open(path)
        assert reopened.events() == events
        # ...and appending continues the sequence.
        event = reopened.append(9, 9, "springfield", 10.0)
        assert event.seq == 4
        reopened.close()

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.append(1, 1, "springfield", 0.0)
            log.append(2, 2, "springfield", 1.0)
        # Simulate a writer crash mid-append.
        with path.open("a", encoding="utf-8") as f:
            f.write('{"seq": 2, "user_id": 3')
        log = EventLog.open(path)
        assert len(log) == 2
        # The rewrite healed the file: reopening again is clean.
        log.close()
        assert len(EventLog.open(path)) == 2

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.append(1, 1, "springfield", 0.0)
            log.append(2, 2, "springfield", 1.0)
        lines = path.read_text().splitlines()
        lines[0] = "not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            EventLog.open(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        event = CheckinEvent(seq=3, user_id=1, poi_id=1,
                             city="springfield", timestamp=0.0)
        path.write_text(json.dumps(event.to_dict()) + "\n")
        with pytest.raises(ValueError, match="sequence gap"):
            EventLog.open(path)

    def test_open_missing_file_starts_empty(self, tmp_path):
        log = EventLog.open(tmp_path / "new.jsonl")
        assert len(log) == 0
        log.append(1, 1, "springfield", 0.0)
        log.close()
        assert len(EventLog.open(tmp_path / "new.jsonl")) == 1
