"""Loss function tests: correctness and numerical stability."""

import numpy as np
import pytest

from repro.nn.losses import bce_with_logits, l2_penalty, mse, negative_sampling_loss
from repro.nn.tensor import Tensor


class TestBCEWithLogits:
    def test_matches_manual_formula(self):
        logits = np.array([0.3, -1.2, 2.0])
        labels = np.array([1.0, 0.0, 1.0])
        out = bce_with_logits(Tensor(logits), labels).item()
        p = 1 / (1 + np.exp(-logits))
        manual = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
        np.testing.assert_allclose(out, manual, rtol=1e-10)

    def test_extreme_logits_finite(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        out = bce_with_logits(logits, np.array([0.0, 1.0])).item()
        assert np.isfinite(out)
        assert out > 100  # hugely wrong predictions are hugely penalized

    def test_perfect_prediction_near_zero(self):
        out = bce_with_logits(Tensor(np.array([50.0, -50.0])),
                              np.array([1.0, 0.0])).item()
        assert out < 1e-10

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor(np.zeros(3)), np.zeros(4))

    def test_reductions(self):
        logits = Tensor(np.zeros(4))
        labels = np.ones(4)
        mean = bce_with_logits(logits, labels, reduction="mean").item()
        total = bce_with_logits(logits, labels, reduction="sum").item()
        none = bce_with_logits(logits, labels, reduction="none")
        np.testing.assert_allclose(total, mean * 4)
        assert none.shape == (4,)
        with pytest.raises(ValueError):
            bce_with_logits(logits, labels, reduction="bogus")

    def test_gradient_direction(self):
        logits = Tensor(np.array([0.0]), requires_grad=True)
        bce_with_logits(logits, np.array([1.0])).backward()
        # For a positive label, increasing the logit lowers the loss.
        assert logits.grad[0] < 0


class TestNegativeSamplingLoss:
    def test_matches_manual(self):
        pos = np.array([1.0, 2.0])
        neg = np.array([[0.5, -0.5], [1.0, 0.0]])
        out = negative_sampling_loss(Tensor(pos), Tensor(neg)).item()
        sig = lambda x: 1 / (1 + np.exp(-x))
        manual = (-np.log(sig(pos)) - np.log(sig(-neg)).sum(axis=1)).mean()
        np.testing.assert_allclose(out, manual, rtol=1e-10)

    def test_flat_negatives_supported(self):
        out = negative_sampling_loss(Tensor(np.zeros(3)),
                                     Tensor(np.zeros(6))).item()
        assert np.isfinite(out)

    def test_decreases_when_separation_grows(self):
        weak = negative_sampling_loss(Tensor(np.array([0.1])),
                                      Tensor(np.array([[-0.1]]))).item()
        strong = negative_sampling_loss(Tensor(np.array([5.0])),
                                        Tensor(np.array([[-5.0]]))).item()
        assert strong < weak


class TestMSE:
    def test_value(self):
        out = mse(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0])).item()
        np.testing.assert_allclose(out, 2.5)

    def test_zero_at_target(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse(pred, np.array([1.0, 2.0])).item() == 0.0


class TestL2Penalty:
    def test_sums_squared_norms(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([[2.0]]), requires_grad=True)
        np.testing.assert_allclose(l2_penalty([a, b]).item(), 1 + 4 + 4)

    def test_empty_list_is_zero(self):
        assert l2_penalty([]).item() == 0.0
