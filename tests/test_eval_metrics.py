"""Ranking metric tests: hand-computed values and edge cases."""

import numpy as np
import pytest

from repro.eval.metrics import (
    METRIC_NAMES,
    all_metrics_at_k,
    average_precision_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)

RANKED = [10, 20, 30, 40, 50]
RELEVANT = {20, 40, 99}


class TestRecall:
    def test_hand_computed(self):
        # hits in top-4: {20, 40} of 3 relevant
        np.testing.assert_allclose(recall_at_k(RANKED, RELEVANT, 4), 2 / 3)

    def test_zero_when_no_hits(self):
        assert recall_at_k(RANKED, {99}, 5) == 0.0

    def test_one_when_all_found(self):
        assert recall_at_k([1, 2], {1, 2}, 2) == 1.0

    def test_monotone_in_k(self):
        values = [recall_at_k(RANKED, RELEVANT, k) for k in range(1, 6)]
        assert values == sorted(values)


class TestPrecision:
    def test_hand_computed(self):
        np.testing.assert_allclose(precision_at_k(RANKED, RELEVANT, 4), 0.5)

    def test_k_exceeding_list(self):
        # top-10 of a 5-long list still divides by k
        np.testing.assert_allclose(
            precision_at_k(RANKED, RELEVANT, 10), 2 / 10
        )


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        assert ndcg_at_k([1, 2, 3], {1, 2, 3}, 3) == 1.0

    def test_hand_computed(self):
        # relevant at positions 2 and 4 (1-indexed)
        dcg = 1 / np.log2(3) + 1 / np.log2(5)
        idcg = 1 / np.log2(2) + 1 / np.log2(3) + 1 / np.log2(4)
        np.testing.assert_allclose(ndcg_at_k(RANKED, RELEVANT, 5),
                                   dcg / idcg)

    def test_early_hit_beats_late_hit(self):
        early = ndcg_at_k([1, 9, 9, 9], {1}, 4)
        late = ndcg_at_k([9, 9, 9, 1], {1}, 4)
        assert early > late


class TestMAP:
    def test_hand_computed(self):
        # hits at ranks 2 (prec 1/2) and 4 (prec 2/4); denom min(3, 5)=3
        expected = (0.5 + 0.5) / 3
        np.testing.assert_allclose(
            average_precision_at_k(RANKED, RELEVANT, 5), expected
        )

    def test_perfect_is_one(self):
        assert average_precision_at_k([1, 2], {1, 2}, 2) == 1.0


class TestValidation:
    @pytest.mark.parametrize("fn", [recall_at_k, precision_at_k,
                                    ndcg_at_k, average_precision_at_k])
    def test_bad_k_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(RANKED, RELEVANT, 0)

    @pytest.mark.parametrize("fn", [recall_at_k, precision_at_k,
                                    ndcg_at_k, average_precision_at_k])
    def test_empty_relevant_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(RANKED, set(), 3)


class TestAllMetrics:
    def test_contains_every_metric(self):
        out = all_metrics_at_k(RANKED, RELEVANT, 3)
        assert set(out) == set(METRIC_NAMES)

    def test_all_in_unit_interval(self):
        out = all_metrics_at_k(RANKED, RELEVANT, 3)
        for value in out.values():
            assert 0.0 <= value <= 1.0
