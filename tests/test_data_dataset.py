"""CheckinDataset container tests."""

import numpy as np
import pytest

from repro.data.dataset import CheckinDataset
from repro.data.records import POI, CheckinRecord


def small_world():
    pois = [
        POI(0, "a", (0.0, 0.0), ("park",)),
        POI(1, "a", (1.0, 1.0), ("museum",)),
        POI(2, "b", (0.0, 0.0), ("casino", "park")),
    ]
    checkins = [
        CheckinRecord(10, 0, "a", 1.0),
        CheckinRecord(10, 1, "a", 2.0),
        CheckinRecord(10, 2, "b", 3.0),
        CheckinRecord(11, 1, "a", 4.0),
        CheckinRecord(11, 1, "a", 5.0),
    ]
    return CheckinDataset(pois, checkins)


class TestConstruction:
    def test_duplicate_poi_rejected(self):
        poi = POI(0, "a", (0, 0), ())
        with pytest.raises(ValueError):
            CheckinDataset([poi, poi], [])

    def test_unknown_poi_reference_rejected(self):
        poi = POI(0, "a", (0, 0), ())
        with pytest.raises(ValueError):
            CheckinDataset([poi], [CheckinRecord(1, 99, "a")])

    def test_city_mismatch_rejected(self):
        poi = POI(0, "a", (0, 0), ())
        with pytest.raises(ValueError):
            CheckinDataset([poi], [CheckinRecord(1, 0, "WRONG")])


class TestViews:
    def test_users_and_cities(self):
        ds = small_world()
        assert ds.users == {10, 11}
        assert ds.cities == ["a", "b"]

    def test_user_profile_ordered_by_time(self):
        ds = small_world()
        times = [r.timestamp for r in ds.user_profile(10)]
        assert times == sorted(times)

    def test_unknown_user_profile_empty(self):
        assert small_world().user_profile(999) == []

    def test_city_slices(self):
        ds = small_world()
        assert len(ds.checkins_in_city("a")) == 4
        assert [p.poi_id for p in ds.pois_in_city("b")] == [2]

    def test_cities_of_user(self):
        ds = small_world()
        assert ds.cities_of_user(10) == {"a", "b"}
        assert ds.cities_of_user(11) == {"a"}

    def test_users_in_city(self):
        assert small_world().users_in_city("b") == {10}


class TestAggregations:
    def test_visit_counts(self):
        counts = small_world().visit_counts()
        assert counts[1] == 3
        assert counts[0] == 1

    def test_user_poi_pairs_distinct(self):
        pairs = small_world().user_poi_pairs()
        assert (11, 1) in pairs
        assert len(pairs) == 4  # repeat visit collapsed

    def test_vocabulary_sorted_unique(self):
        vocab = small_world().vocabulary()
        assert vocab == ["casino", "museum", "park"]

    def test_build_index_deterministic(self):
        ds = small_world()
        idx1, idx2 = ds.build_index(), ds.build_index()
        assert idx1.users.keys() == idx2.users.keys()
        assert idx1.num_pois == 3
        assert idx1.num_words == 3

    def test_interaction_matrix(self):
        ds = small_world()
        index = ds.build_index()
        matrix = ds.interaction_matrix(index)
        u11 = index.users.index_of(11)
        p1 = index.pois.index_of(1)
        assert matrix[u11, p1] == 2.0
        assert matrix.sum() == 5.0


class TestRestriction:
    def test_restrict_to_cities(self):
        sub = small_world().restrict_to_cities(["a"])
        assert sub.cities == ["a"]
        assert sub.num_checkins() == 4

    def test_without_users(self):
        sub = small_world().without_users([10])
        assert sub.users == {11}
        assert len(sub.pois) == 3  # POIs kept
