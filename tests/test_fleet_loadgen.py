"""Open-loop load generation: schedules, Zipf skew, and the harness."""

import numpy as np
import pytest

from repro.fleet.loadgen import (
    LoadPhase,
    ZipfUserSampler,
    measure_saturation,
    poisson_schedule,
    run_open_loop,
)
from repro.obs.metrics import MetricsRegistry


class StubBackend:
    """Records recommend_many calls; unknown users are skipped."""

    def __init__(self, known=frozenset(range(100))):
        self.known = known
        self.calls = []

    def recommend_many(self, user_ids, k=10, exclude_visited=True):
        self.calls.append(list(user_ids))
        return {u: [(0, 1.0)] * k for u in user_ids if u in self.known}


class TestLoadPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadPhase(0.0)
        with pytest.raises(ValueError):
            LoadPhase(1.0, rate_multiplier=-0.5)
        assert LoadPhase(1.0, 0.0).rate_multiplier == 0.0


class TestPoissonSchedule:
    def test_sorted_and_bounded(self):
        rng = np.random.default_rng(0)
        phases = [LoadPhase(1.0), LoadPhase(0.5, 3.0)]
        times = poisson_schedule(100.0, phases, rng)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0 and times[-1] < 1.5

    def test_seeded_determinism(self):
        phases = [LoadPhase(2.0)]
        a = poisson_schedule(50.0, phases, np.random.default_rng(5))
        b = poisson_schedule(50.0, phases, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_burst_phase_raises_arrival_density(self):
        rng = np.random.default_rng(1)
        phases = [LoadPhase(2.0), LoadPhase(2.0, 3.0)]
        times = poisson_schedule(200.0, phases, rng)
        steady = np.count_nonzero(times < 2.0)
        burst = np.count_nonzero(times >= 2.0)
        assert burst > 2 * steady

    def test_zero_rate_phase_emits_nothing(self):
        rng = np.random.default_rng(2)
        times = poisson_schedule(
            100.0, [LoadPhase(1.0, 0.0), LoadPhase(1.0)], rng)
        assert times.min() >= 1.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_schedule(0.0, [LoadPhase(1.0)], rng)
        with pytest.raises(ValueError):
            poisson_schedule(10.0, [], rng)


class TestZipfUserSampler:
    def test_samples_only_population_ids(self):
        ids = [7, 11, 13, 17, 19]
        sampler = ZipfUserSampler(ids, exponent=1.2, seed=3)
        drawn = sampler.sample(500)
        assert set(drawn.tolist()) <= set(ids)

    def test_seeded_determinism(self):
        ids = list(range(50))
        a = ZipfUserSampler(ids, seed=9).sample(200)
        b = ZipfUserSampler(ids, seed=9).sample(200)
        np.testing.assert_array_equal(a, b)

    def test_skew_concentrates_on_hot_users(self):
        ids = list(range(200))
        drawn = ZipfUserSampler(ids, exponent=1.3, seed=0).sample(5000)
        _unique, counts = np.unique(drawn, return_counts=True)
        top_share = np.sort(counts)[-10:].sum() / counts.sum()
        # 10 of 200 users (5%) should carry far more than 5% of traffic.
        assert top_share > 0.25

    def test_zero_exponent_is_uniformish(self):
        ids = list(range(10))
        drawn = ZipfUserSampler(ids, exponent=0.0, seed=0).sample(5000)
        _unique, counts = np.unique(drawn, return_counts=True)
        assert counts.min() > 300

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfUserSampler([])
        with pytest.raises(ValueError):
            ZipfUserSampler([1], exponent=-1.0)


class TestRunOpenLoop:
    def test_serves_offered_load_and_records_metrics(self):
        backend = StubBackend()
        registry = MetricsRegistry()
        result = run_open_loop(backend, list(range(100)), rate=2000.0,
                               duration_s=0.25, k=5, seed=0,
                               registry=registry)
        assert result.offered > 0
        assert result.served == result.offered
        assert result.batches <= result.offered
        assert result.p50_ms >= 0 and result.p99_ms >= result.p50_ms
        assert registry.counter("fleet.load.offered").value == \
            result.offered
        assert registry.counter("fleet.load.served").value == result.served
        hist = registry.histogram("fleet.load.latency_ms")
        assert hist.count == result.offered

    def test_unknown_users_reduce_served_not_offered(self):
        backend = StubBackend(known=frozenset(range(50)))
        result = run_open_loop(backend, list(range(100)), rate=2000.0,
                               duration_s=0.2, seed=1)
        assert result.served < result.offered

    def test_burst_phases_flow_through(self):
        backend = StubBackend()
        phases = [LoadPhase(0.1), LoadPhase(0.05, 3.0), LoadPhase(0.1)]
        result = run_open_loop(backend, list(range(20)), rate=1000.0,
                               phases=phases, seed=2)
        assert result.phases == phases
        assert result.offered > 0

    def test_requires_duration_or_phases(self):
        with pytest.raises(ValueError):
            run_open_loop(StubBackend(), [1], rate=10.0)

    def test_to_dict_round_numbers(self):
        backend = StubBackend()
        result = run_open_loop(backend, list(range(10)), rate=500.0,
                               duration_s=0.1, seed=3)
        d = result.to_dict()
        assert d["offered"] == result.offered
        assert d["served_rate"] == pytest.approx(result.served_rate)


class TestMeasureSaturation:
    def test_positive_rate_from_stub(self):
        backend = StubBackend()
        rate = measure_saturation(backend, list(range(100)),
                                  batch_size=32, min_seconds=0.05)
        assert rate > 0
        assert all(len(call) == 32 for call in backend.calls)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_saturation(StubBackend(), [1], batch_size=0)
        with pytest.raises(ValueError):
            measure_saturation(StubBackend(), [1], min_seconds=0.0)
