"""End-to-end request tracing across a real multi-process fleet.

One module-scoped traced run drives the resilient path with *every*
shard stalled (hedging has nowhere healthy to go, so degradation is
deterministic), dumps the flight recorder into a telemetry tree, and
the tests assert the tentpole contract on the reloaded JSONL: every
degraded request has a complete cross-process trace, the critical-path
segments sum to the measured latency, and the p99 attribution lands
within the 10% band.
"""

import pytest

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.fleet.loadgen import run_chaos_loop
from repro.fleet.router import ShardRouter
from repro.obs.export import load_slo_summaries, load_traces
from repro.obs.slo import SloTracker, default_serving_slos
from repro.obs.spans import CAT_ADMISSION, CAT_MERGE, CAT_QUEUE
from repro.obs.trace_report import (
    attach_spans,
    format_trace_report,
    p99_attribution,
    trace_critical_path,
)
from repro.parallel.supervisor import SupervisionConfig
from repro.reliability import ChaosPlan, WindowFault
from repro.resilience import QUALITY_FULL, ResilienceConfig

TARGET = "shelbyville"
K = 5
FOREVER = 1_000_000
DEADLINE_MS = 200.0


@pytest.fixture(scope="module")
def world(tiny_dataset):
    dataset, _truth = tiny_dataset
    index = dataset.build_index()
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       STTransRecConfig(embedding_dim=8, seed=3))
    model.eval()
    return model, index, dataset


def _supervision():
    return SupervisionConfig(step_timeout=60.0, max_respawns=2,
                             respawn_backoff=0.01)


def _tight():
    return ResilienceConfig(
        deadline_ms=DEADLINE_MS, hop_timeout_ms=DEADLINE_MS * 0.4,
        hedge_after_ms=DEADLINE_MS * 0.12, poll_interval_ms=4.0,
        finalize_margin_ms=4.0, breaker_restart_shard=False)


@pytest.fixture(scope="module")
def degraded_run(world, tmp_path_factory):
    """A traced chaos-loop run with *both* shards stalled all run.

    The stall (0.5s) dwarfs the deadline (200ms) but not the load
    window (2s), so abandoned attempts keep resolving as *stale*
    replies mid-run — the path that carries shard-side spans back into
    the router's recorder ring for cross-process reconstruction.
    """
    model, index, dataset = world
    telemetry_dir = tmp_path_factory.mktemp("traced")
    users = sorted(dataset.users)
    plan = ChaosPlan(windows=[
        WindowFault.slow_shard(0, 0, FOREVER, 0.5),
        WindowFault.slow_shard(1, 0, FOREVER, 0.5),
    ])
    slo = SloTracker(default_serving_slos(DEADLINE_MS),
                     short_window_s=0.25, long_window_s=1.0,
                     min_events=10)
    with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                     fault_plan=plan, supervision=_supervision(),
                     resilience=_tight(), tracing=True, slo=slo,
                     telemetry_dir=telemetry_dir) as router:
        result = run_chaos_loop(router, users, rate=200.0,
                                duration_s=2.0, k=K,
                                deadline_ms=DEADLINE_MS, seed=11,
                                slo=slo)
        stats = router.trace_stats()
    traces, spans, num_logs = load_traces(telemetry_dir)
    return {"users": users, "result": result, "stats": stats,
            "slo": slo, "telemetry_dir": telemetry_dir,
            "traces": traces, "spans": spans, "num_logs": num_logs}


class TestDegradedTracing:
    def test_every_degraded_request_has_a_complete_trace(self,
                                                         degraded_run):
        result = degraded_run["result"]
        non_full = result.answered - result.quality_counts.get("full", 0)
        assert non_full > 0, "stalling every shard must degrade answers"
        kept = [t for t in degraded_run["traces"]
                if t["keep_reason"] in ("degraded", "shed", "error")]
        assert kept, "degraded requests must be tail-sampled in"
        for trace in kept:
            cats = {e["cat"] for e in trace["events"]
                    if e["trace"] == trace["trace_id"]}
            # The covering router-side segments are always present.
            assert CAT_QUEUE in cats
            assert CAT_ADMISSION in cats or trace["shed"]
            assert CAT_MERGE in cats

    def test_critical_path_sums_to_request_latency(self, degraded_run):
        for trace in degraded_run["traces"]:
            if trace["shed"]:
                continue            # shed answers skip the fan-out
            path = trace_critical_path(trace)
            assert sum(path.values()) == pytest.approx(
                trace["latency_ms"], rel=0.02, abs=0.5)

    def test_p99_attribution_within_band(self, degraded_run):
        attribution = p99_attribution(degraded_run["traces"])
        assert attribution["traces_used"] >= 1
        assert attribution["sum_ms"] == pytest.approx(
            attribution["p99_ms"], rel=0.10)
        # The attribution names a real culprit, not an empty table.
        assert max(attribution["categories"].values()) > 0.0

    def test_shard_spans_join_cross_process(self, degraded_run):
        enriched = attach_spans(degraded_run["traces"],
                                degraded_run["spans"])
        procs = {e["proc"] for t in enriched for e in t["events"]}
        assert any(p.startswith("shard-") for p in procs), (
            "replies (or shard span logs) must carry shard-side spans "
            f"into the reconstruction, saw procs={sorted(procs)}")

    def test_slo_fed_by_router_and_loop(self, degraded_run):
        result = degraded_run["result"]
        summary = degraded_run["slo"].summary()
        # The router feeds one event per *finalized response* (exactly
        # the population the flight recorder judges); the loop adds
        # only the arrivals that got no response at all.  Duplicate
        # arrivals share their user's response, so events land between
        # the response count and the offered count.
        availability = summary["objectives"]["availability"]
        flight_seen = degraded_run["stats"]["flight"]["seen"]
        unanswered = result.offered - result.answered
        assert availability["events"] == flight_seen + unanswered
        assert availability["bad"] == unanswered
        deadline = summary["objectives"]["deadline_hit"]
        assert deadline["events"] == availability["events"]

    def test_trace_stats_counts(self, degraded_run):
        stats = degraded_run["stats"]
        assert stats["recorder"]["emitted"] > 0
        assert stats["flight"]["seen"] >= 1
        assert stats["flight"]["kept"] >= 1

    def test_report_renders_from_reloaded_tree(self, degraded_run):
        report = format_trace_report(degraded_run["traces"],
                                     degraded_run["spans"],
                                     num_logs=degraded_run["num_logs"],
                                     timelines=1)
        assert "critical path" in report
        assert "p99 attribution" in report
        assert "slowest trace(s)" in report


class TestHealthyTracing:
    def test_fault_free_run_is_quiet(self, world):
        model, index, dataset = world
        users = sorted(dataset.users)
        generous = ResilienceConfig(
            deadline_ms=10_000.0, hop_timeout_ms=5_000.0,
            hedge_after_ms=2_000.0, poll_interval_ms=5.0)
        slo = SloTracker(default_serving_slos(10_000.0),
                         short_window_s=1.0, long_window_s=4.0,
                         min_events=5)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         resilience=generous, tracing=True,
                         slo=slo) as router:
            responses = router.recommend_resilient(users, k=K)
            stats = router.trace_stats()
        assert all(r.quality == QUALITY_FULL for r in responses.values())
        # Nothing degraded, shed, or errored: the flight recorder saw
        # everything and kept (at most) slow-tail traces.
        assert stats["flight"]["seen"] == len(users)
        assert stats["flight"]["kept_by_reason"]["degraded"] == 0
        assert stats["flight"]["kept_by_reason"]["shed"] == 0
        assert slo.evaluate() == []
        assert slo.alerts == []

    def test_trace_stats_requires_tracing(self, world):
        model, index, dataset = world
        with ShardRouter(model, index, dataset, TARGET,
                         num_shards=1) as router:
            with pytest.raises(RuntimeError):
                router.trace_stats()


class TestSloPersistence:
    def test_slo_summary_roundtrips_through_telemetry_tree(
            self, degraded_run, tmp_path):
        import json

        doc = {"kind": "slo", "deadline_ms": DEADLINE_MS,
               "shards": {"2": degraded_run["slo"].summary()}}
        (tmp_path / "slo.json").write_text(json.dumps(doc))
        loaded = load_slo_summaries(tmp_path)
        assert len(loaded) == 1
        _path, summary = loaded[0]
        assert summary["shards"]["2"]["objectives"][
            "deadline_hit"]["events"] > 0
