"""MicroBatcher tests: coalescing, ordering, errors, lifecycle."""

import threading
import time

import pytest

from repro.serving.batcher import MicroBatcher


def echo_handler(batch):
    return [("done", request) for request in batch]


class TestBasics:
    def test_single_request_roundtrip(self):
        with MicroBatcher(echo_handler, max_wait_ms=1.0) as batcher:
            assert batcher.submit(42).result(timeout=5) == ("done", 42)

    def test_results_matched_to_requests(self):
        with MicroBatcher(lambda batch: [r * 2 for r in batch],
                          max_wait_ms=20.0) as batcher:
            futures = [batcher.submit(i) for i in range(10)]
            assert [f.result(timeout=5) for f in futures] == \
                [i * 2 for i in range(10)]

    def test_call_convenience(self):
        with MicroBatcher(echo_handler, max_wait_ms=1.0) as batcher:
            assert batcher(7, timeout=5) == ("done", 7)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MicroBatcher(echo_handler, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(echo_handler, max_wait_ms=-1)


class TestCoalescing:
    def test_concurrent_burst_coalesces(self):
        sizes = []

        def handler(batch):
            sizes.append(len(batch))
            return list(batch)

        n = 8
        with MicroBatcher(handler, max_batch_size=n,
                          max_wait_ms=200.0) as batcher:
            barrier = threading.Barrier(n)
            results = [None] * n

            def fire(i):
                barrier.wait()
                results[i] = batcher.submit(i).result(timeout=10)

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == list(range(n))
        # The burst must not have been served one request at a time.
        assert len(sizes) < n
        assert max(sizes) > 1

    def test_max_batch_size_respected(self):
        sizes = []

        def handler(batch):
            sizes.append(len(batch))
            time.sleep(0.01)  # let the queue fill behind the worker
            return list(batch)

        with MicroBatcher(handler, max_batch_size=3,
                          max_wait_ms=50.0) as batcher:
            futures = [batcher.submit(i) for i in range(10)]
            for f in futures:
                f.result(timeout=10)
        assert max(sizes) <= 3

    def test_stats(self):
        with MicroBatcher(echo_handler, max_wait_ms=1.0) as batcher:
            batcher.submit(1).result(timeout=5)
            stats = batcher.stats()
        assert stats["num_requests"] == 1
        assert stats["num_batches"] >= 1
        assert stats["mean_batch_size"] > 0


class TestErrors:
    def test_handler_exception_propagates_to_all_waiters(self):
        def broken(batch):
            raise RuntimeError("engine exploded")

        with MicroBatcher(broken, max_wait_ms=20.0) as batcher:
            futures = [batcher.submit(i) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="engine exploded"):
                    future.result(timeout=5)

    def test_wrong_result_count_is_an_error(self):
        with MicroBatcher(lambda batch: [], max_wait_ms=1.0) as batcher:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit(1).result(timeout=5)

    def test_error_batch_does_not_kill_worker(self):
        calls = []

        def flaky(batch):
            calls.append(list(batch))
            if len(calls) == 1:
                raise ValueError("first batch fails")
            return list(batch)

        with MicroBatcher(flaky, max_wait_ms=1.0) as batcher:
            with pytest.raises(ValueError):
                batcher.submit("a").result(timeout=5)
            assert batcher.submit("b").result(timeout=5) == "b"


class TestLifecycle:
    def test_close_drains_pending(self):
        def slow(batch):
            time.sleep(0.02)
            return list(batch)

        batcher = MicroBatcher(slow, max_batch_size=2, max_wait_ms=1.0)
        futures = [batcher.submit(i) for i in range(5)]
        batcher.close()
        assert [f.result(timeout=5) for f in futures] == list(range(5))

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(echo_handler)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(echo_handler)
        batcher.close()
        batcher.close()


class TestCloseRace:
    def test_request_stranded_behind_sentinel_is_failed(self):
        """A request that lands in the queue after the close sentinel was
        consumed must have its future failed, not left pending forever."""
        from concurrent.futures import Future

        batcher = MicroBatcher(echo_handler)
        batcher.close()
        stranded: Future = Future()
        batcher._queue.put(("late", stranded))   # simulate the lost race
        batcher.close()                          # re-close drains leftovers
        with pytest.raises(RuntimeError, match="batcher is closed"):
            stranded.result(timeout=5)

    def test_submit_racing_close_never_hangs(self):
        """Stress the submit/close race: every future must resolve, either
        with a result or with the closed error."""
        import threading

        for _ in range(20):
            batcher = MicroBatcher(echo_handler, max_wait_ms=0.5)
            futures = []
            errors = []

            def submitter():
                for i in range(50):
                    try:
                        futures.append(batcher.submit(i))
                    except RuntimeError:
                        errors.append(i)
                        return

            thread = threading.Thread(target=submitter)
            thread.start()
            batcher.close()
            thread.join(timeout=5)
            assert not thread.is_alive()
            for future in futures:
                try:
                    future.result(timeout=5)     # must not time out
                except RuntimeError:
                    pass                          # closed: also resolved
