"""Crossing-city split protocol tests."""

import pytest

from repro.data.split import make_crossing_city_split


class TestSplit:
    def test_unknown_target_rejected(self, tiny_dataset):
        dataset, _ = tiny_dataset
        with pytest.raises(ValueError):
            make_crossing_city_split(dataset, "atlantis")

    def test_test_users_visited_both_sides(self, tiny_dataset, tiny_split):
        dataset, _ = tiny_dataset
        for user in tiny_split.test_users:
            cities = dataset.cities_of_user(user)
            assert "shelbyville" in cities
            assert cities - {"shelbyville"}

    def test_ground_truth_not_in_train(self, tiny_split):
        """Held-out check-ins must be absent from training data."""
        for user, pois in tiny_split.ground_truth.items():
            train_pois = {r.poi_id
                          for r in tiny_split.train.user_profile(user)
                          if r.city == "shelbyville"}
            assert not (pois & train_pois)

    def test_no_target_checkins_for_test_users_in_train(self, tiny_split):
        for user in tiny_split.test_users:
            target_records = [
                r for r in tiny_split.train.user_profile(user)
                if r.city == tiny_split.target_city
            ]
            assert target_records == []

    def test_all_pois_kept_in_train(self, tiny_dataset, tiny_split):
        dataset, _ = tiny_dataset
        assert set(tiny_split.train.pois) == set(dataset.pois)

    def test_dropped_checkins_are_exactly_ground_truth(self, tiny_dataset,
                                                       tiny_split):
        """Every removed check-in appears in its user's ground truth set
        (ground truth dedupes repeat visits, so counts need not match)."""
        dataset, _ = tiny_dataset
        dropped = [r for r in dataset.checkins
                   if (r.user_id, r.poi_id, r.timestamp) not in
                   {(t.user_id, t.poi_id, t.timestamp)
                    for t in tiny_split.train.checkins}]
        assert dropped, "split removed nothing"
        for record in dropped:
            assert record.city == tiny_split.target_city
            assert record.poi_id in tiny_split.ground_truth[record.user_id]
        # and the train set is strictly smaller
        assert tiny_split.train.num_checkins() < dataset.num_checkins()

    def test_local_target_checkins_stay_in_train(self, tiny_dataset,
                                                 tiny_split):
        """Non-crossing locals' target-city check-ins train the model."""
        assert tiny_split.train.checkins_in_city("shelbyville")

    def test_matches_generator_crossing_users(self, tiny_split, tiny_truth):
        assert set(tiny_split.test_users) == set(tiny_truth.crossing_user_ids)
