"""Experiment runner and reporting tests (fast, tiny budgets)."""

import dataclasses

import numpy as np
import pytest

import repro.eval.experiment as experiment
from repro.baselines import MethodProfile
from repro.data.split import make_crossing_city_split
from repro.data.synthetic import generate_dataset
from repro.eval.experiment import (
    ExperimentContext,
    build_context,
    run_ablation,
    run_depth_sweep,
    run_dropout_sweep,
    run_method_comparison,
    run_resample_sweep,
)
from repro.eval.protocol import RankingEvaluator
from repro.eval.reporting import (
    format_all_metrics,
    format_comparison,
    format_hyper_table,
    format_scalar_sweep,
    format_sweep,
)

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def tiny_context(tiny_split):
    profile = MethodProfile(embedding_dim=8, epochs=1, pretrain_epochs=1,
                            num_topics=4, mf_rank=4)
    return ExperimentContext(
        name="tiny",
        config=tiny_config(),
        split=tiny_split,
        evaluator=RankingEvaluator(tiny_split, seed=0),
        profile=profile,
    )


@pytest.fixture(autouse=True)
def single_seed(monkeypatch):
    """One model seed per method keeps experiment tests fast."""
    monkeypatch.setattr(experiment, "BENCH_SEEDS", (0,))


class TestBuildContext:
    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            build_context("netflix")

    def test_builds_foursquare(self):
        ctx = build_context("foursquare", scale=0.1)
        assert ctx.target_city == "los_angeles"
        assert ctx.evaluator.evaluable_users


class TestRunners:
    def test_method_comparison_structure(self, tiny_context):
        results = run_method_comparison(tiny_context,
                                        methods=["ItemPop", "CRCF"])
        assert set(results) == {"ItemPop", "CRCF"}
        assert 0 <= results["ItemPop"]["recall"][10] <= 1

    def test_ablation_covers_variants(self, tiny_context):
        results = run_ablation(tiny_context)
        assert set(results) == {"ST-TransRec", "ST-TransRec-1",
                                "ST-TransRec-2", "ST-TransRec-3"}

    def test_resample_sweep_keys(self, tiny_context):
        results = run_resample_sweep(tiny_context, alphas=(0.0, 0.1),
                                     cutoffs=(2, 10))
        assert set(results) == {0.0, 0.1}
        assert set(results[0.0]["recall"]) == {2, 10}

    def test_dropout_sweep_keys(self, tiny_context):
        results = run_dropout_sweep(tiny_context, rates=(0.0, 0.3))
        assert set(results) == {0.0, 0.3}
        assert "ndcg" in results[0.0]

    def test_depth_sweep_validates(self, tiny_context):
        with pytest.raises(ValueError):
            run_depth_sweep(tiny_context, depths=(9,))

    def test_depth_sweep_runs(self, tiny_context):
        results = run_depth_sweep(tiny_context, depths=(1,), cutoffs=(2,))
        assert set(results) == {1}


class TestReporting:
    @pytest.fixture(scope="class")
    def fake_results(self):
        table = {m: {k: 0.5 for k in (2, 4)} for m in
                 ("recall", "precision", "ndcg", "map")}
        return {"ItemPop": table, "ST-TransRec": table}

    def test_format_comparison(self, fake_results):
        text = format_comparison(fake_results, cutoffs=(2, 4))
        assert "ItemPop" in text
        assert "0.5000" in text

    def test_format_comparison_unknown_metric(self, fake_results):
        with pytest.raises(ValueError):
            format_comparison(fake_results, metric="accuracy")

    def test_format_all_metrics_has_four_blocks(self, fake_results):
        text = format_all_metrics(fake_results, cutoffs=(2, 4))
        assert text.count("ItemPop") == 4

    def test_format_sweep(self):
        results = {0.1: {"recall": {2: 0.3, 10: 0.4}},
                   0.2: {"recall": {2: 0.35, 10: 0.45}}}
        text = format_sweep(results, "alpha")
        assert "alpha" in text
        assert "0.4500" in text

    def test_format_scalar_sweep(self):
        results = {0.1: {m: 0.5 for m in ("recall", "precision",
                                          "ndcg", "map")}}
        assert "recall" in format_scalar_sweep(results, "dropout")

    def test_format_hyper_table(self):
        table = {m: {2: 0.1, 4: 0.2} for m in ("recall", "precision",
                                               "ndcg", "map")}
        text = format_hyper_table({16: table, 32: table}, "dim")
        assert "16" in text and "32" in text

    def test_markdown_comparison(self, fake_results):
        from repro.eval.reporting import markdown_comparison
        text = markdown_comparison(fake_results, metric="recall", k=2)
        assert text.startswith("| Method | recall@2 |")
        assert "| ItemPop | 0.5000 |" in text
        import pytest as _pytest
        with _pytest.raises(ValueError):
            markdown_comparison(fake_results, metric="accuracy")
