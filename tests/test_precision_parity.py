"""Cross-precision parity harness and checkpoint dtype round-trips."""

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    TrainingState,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
)
from repro.core.trainer import STTransRecTrainer
from repro.nn.dtypes import using_dtype
from repro.perf.parity import MetricDelta, ParityReport, run_precision_parity

from tests.test_core_trainer import fast_config


class TestParityReport:
    def test_empty_report_passes(self):
        assert ParityReport(tolerance=0.0).passed

    def test_delta_is_absolute(self):
        d = MetricDelta("recall", 10, f64=0.30, f32=0.33)
        assert d.delta == pytest.approx(0.03)

    def test_max_delta_gates_pass(self):
        report = ParityReport(tolerance=0.02)
        report.deltas.append(MetricDelta("recall", 10, 0.30, 0.33))
        assert report.max_delta == pytest.approx(0.03)
        assert not report.passed

    def test_fault_check_requires_a_trip(self):
        report = ParityReport(tolerance=0.5, fault_checked=True,
                              fault_trips=0)
        assert not report.passed
        report.fault_trips = 1
        assert report.passed

    def test_table_renders_verdict(self):
        report = ParityReport(tolerance=0.05)
        report.deltas.append(MetricDelta("ndcg", 10, 0.20, 0.21))
        text = report.table()
        assert "ndcg@10" in text
        assert "PASS" in text


class TestRunParity:
    @pytest.fixture(scope="class")
    def report(self):
        # One real double-train at tiny scale, with the fault leg.
        return run_precision_parity(scale=0.3, embedding_dim=16,
                                    epochs=2, num_workers=1,
                                    tolerance=0.05, with_faults=True)

    def test_metrics_agree_within_tolerance(self, report):
        assert report.max_delta <= report.tolerance, report.table()

    def test_guard_trips_under_f32_nan_grad(self, report):
        assert report.fault_checked
        assert report.fault_trips >= 1

    def test_report_passes(self, report):
        assert report.passed, report.table()


@pytest.fixture(scope="module")
def trained_f64(tiny_split):
    trainer = STTransRecTrainer(tiny_split, fast_config())
    trainer.fit()
    return trainer


def _manifest_of(path):
    with np.load(path) as archive:
        return json.loads(bytes(archive["__manifest__"]).decode("utf-8"))


class TestCheckpointPrecision:
    def test_v3_manifest_records_dtype(self, trained_f64, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained_f64.model, trained_f64.index, path)
        manifest = _manifest_of(path)
        assert manifest["format"] == "repro.checkpoint.v3"
        assert manifest["dtype"] == "float64"

    def test_f64_file_loads_under_f32_policy(self, trained_f64, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained_f64.model, trained_f64.index, path)
        model, _ = load_checkpoint(path, precision="f32")
        params = list(model.parameters())
        assert params
        assert all(p.data.dtype == np.float32 for p in params)
        # Explicit downcast, not retrained noise: values are the
        # bitwise astype of the f64 originals.
        for got, want in zip(params, trained_f64.model.parameters()):
            np.testing.assert_array_equal(
                got.data, want.data.astype(np.float32))

    def test_f32_file_records_float32_and_upcasts(self, tiny_split,
                                                  tmp_path):
        with using_dtype("f32"):
            trainer = STTransRecTrainer(tiny_split, fast_config())
            trainer.fit()
        path = tmp_path / "model32.npz"
        save_checkpoint(trainer.model, trainer.index, path)
        assert _manifest_of(path)["dtype"] == "float32"

        # Default load preserves the stored dtype...
        model, _ = load_checkpoint(path)
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        # ...and an explicit f64 request upcasts every parameter.
        model64, _ = load_checkpoint(path, precision="f64")
        assert all(p.data.dtype == np.float64
                   for p in model64.parameters())

    def test_mixed_dtype_model_rejected(self, trained_f64, tmp_path):
        params = list(trained_f64.model.parameters())
        original = params[0].data
        params[0].data = original.astype(np.float32)
        try:
            with pytest.raises(ValueError, match="mixed dtypes"):
                save_checkpoint(trained_f64.model, trained_f64.index,
                                tmp_path / "bad.npz")
        finally:
            params[0].data = original

    def test_training_checkpoint_moments_cast(self, trained_f64,
                                              tmp_path):
        from repro.nn.optim import Adam

        opt = Adam(list(trained_f64.model.parameters()), lr=1e-3)
        for p in opt.params:
            p.grad = np.zeros_like(p.data)
        opt.step()          # materialize nonzero step_count + moments
        path = tmp_path / "train.npz"
        save_checkpoint(trained_f64.model, trained_f64.index, path,
                        training_state=TrainingState(
                            epochs_completed=1, global_step=3,
                            optimizer_state=opt.state_dict()))
        model, _index, state = load_training_checkpoint(path,
                                                        precision="f32")
        assert all(p.data.dtype == np.float32
                   for p in model.parameters())
        assert state is not None
        assert all(m.dtype == np.float32
                   for m in state.optimizer_state["m"])
        assert all(v.dtype == np.float32
                   for v in state.optimizer_state["v"])
        assert state.optimizer_state["step_count"] == 1
