"""Gradient-guard and divergence-detector tests."""

import numpy as np
import pytest

from repro.reliability import (
    DivergenceDetector,
    GradientGuard,
    nonfinite_gradients,
)


class TestNonfiniteGradients:
    def test_clean_gradients_pass(self):
        grads = {"a": np.ones(3), "b": np.zeros((2, 2))}
        assert nonfinite_gradients(grads) == []

    def test_nan_and_inf_named(self):
        grads = {"ok": np.ones(2),
                 "bad_nan": np.array([1.0, np.nan]),
                 "bad_inf": np.array([np.inf])}
        assert nonfinite_gradients(grads) == ["bad_inf", "bad_nan"]

    def test_none_entries_ignored(self):
        assert nonfinite_gradients({"a": None, "b": np.ones(1)}) == []


class TestGradientGuard:
    def test_accepts_finite(self):
        guard = GradientGuard()
        assert guard.check({"w": np.ones(2)}, loss=0.5)
        assert guard.steps_skipped == 0

    def test_rejects_nan_gradient_and_counts(self):
        guard = GradientGuard()
        assert not guard.check({"w": np.array([np.nan])}, loss=0.5)
        assert guard.steps_skipped == 1
        assert guard.last_bad_names == ["w"]

    def test_rejects_nonfinite_loss(self):
        guard = GradientGuard()
        assert not guard.check({"w": np.ones(2)}, loss=float("nan"))
        assert guard.last_bad_names[0] == "<loss>"


class TestDivergenceDetector:
    def test_steady_losses_never_trip(self):
        detector = DivergenceDetector(factor=10.0, patience=2)
        assert not any(detector.update(loss)
                       for loss in [1.0, 0.9, 0.8, 0.85, 0.7])

    def test_explosion_trips_after_patience(self):
        detector = DivergenceDetector(factor=10.0, patience=2, warmup=0)
        assert not detector.update(1.0)
        assert not detector.update(50.0)     # strike 1
        assert detector.update(60.0)         # strike 2 -> diverged

    def test_single_spike_is_forgiven(self):
        detector = DivergenceDetector(factor=10.0, patience=2, warmup=0)
        detector.update(1.0)
        assert not detector.update(50.0)
        assert not detector.update(0.9)      # recovery resets strikes
        assert not detector.update(55.0)

    def test_nan_loss_counts_as_strike(self):
        detector = DivergenceDetector(factor=10.0, patience=1, warmup=0)
        detector.update(1.0)
        assert detector.update(float("nan"))

    def test_warmup_suppresses_early_chaos(self):
        detector = DivergenceDetector(factor=2.0, patience=1, warmup=3)
        assert not detector.update(1.0)
        assert not detector.update(100.0)    # within warmup
        assert not detector.update(0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DivergenceDetector(factor=1.0)
        with pytest.raises(ValueError):
            DivergenceDetector(patience=0)
        with pytest.raises(ValueError):
            DivergenceDetector(warmup=-1)
