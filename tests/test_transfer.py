"""Kernel and MMD estimator tests."""

import numpy as np
import pytest

from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.transfer.kernels import (
    GaussianKernel,
    MultiGaussianKernel,
    median_heuristic_bandwidth,
)
from repro.transfer.mmd import (
    mmd_between_embeddings,
    mmd_linear,
    mmd_quadratic,
    mmd_unbiased,
)


class TestGaussianKernel:
    def test_self_similarity_is_one(self):
        k = GaussianKernel(1.0)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        gram = k(x, x).data
        np.testing.assert_allclose(np.diag(gram), 1.0, atol=1e-9)

    def test_decreases_with_distance(self):
        k = GaussianKernel(1.0)
        near = k(Tensor([[0.0]]), Tensor([[0.1]])).item()
        far = k(Tensor([[0.0]]), Tensor([[3.0]])).item()
        assert near > far

    def test_known_value(self):
        k = GaussianKernel(2.0)
        value = k(Tensor([[0.0]]), Tensor([[2.0]])).item()
        np.testing.assert_allclose(value, np.exp(-4.0 / 8.0))

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            GaussianKernel(0.0)


class TestMultiGaussianKernel:
    def test_geometric_bandwidths(self):
        k = MultiGaussianKernel(base_bandwidth=1.0, num_kernels=5, factor=2.0)
        np.testing.assert_allclose(k.bandwidths, [0.25, 0.5, 1.0, 2.0, 4.0])

    def test_average_of_components(self):
        multi = MultiGaussianKernel(1.0, num_kernels=3, factor=2.0)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 2)))
        y = Tensor(np.random.default_rng(2).normal(size=(4, 2)))
        expected = sum(
            GaussianKernel(bw)(x, y).data for bw in multi.bandwidths
        ) / 3
        np.testing.assert_allclose(multi(x, y).data, expected)


class TestMedianHeuristic:
    def test_positive_scale(self):
        rng = np.random.default_rng(0)
        bw = median_heuristic_bandwidth(rng.normal(size=(30, 4)),
                                        rng.normal(size=(30, 4)))
        assert 1.0 < bw < 6.0

    def test_degenerate_fallback(self):
        assert median_heuristic_bandwidth(np.zeros((2, 2)),
                                          np.zeros((2, 2))) == 1.0


class TestMMDEstimators:
    @pytest.fixture(scope="class")
    def samples(self):
        rng = np.random.default_rng(0)
        same_a = rng.normal(size=(150, 6))
        same_b = rng.normal(size=(150, 6))
        shifted = rng.normal(loc=1.5, size=(150, 6))
        return same_a, same_b, shifted

    def test_quadratic_separates(self, samples):
        a, b, shifted = samples
        k = GaussianKernel(2.0)
        assert mmd_quadratic(a, b, k).item() < 0.05
        assert mmd_quadratic(a, shifted, k).item() > 0.1

    def test_unbiased_near_zero_for_same(self, samples):
        a, b, _ = samples
        value = mmd_unbiased(a, b, GaussianKernel(2.0)).item()
        assert abs(value) < 0.02  # can be slightly negative

    def test_linear_tracks_quadratic(self, samples):
        a, _, shifted = samples
        k = GaussianKernel(2.0)
        lin = mmd_linear(a, shifted, k).item()
        quad = mmd_quadratic(a, shifted, k).item()
        assert abs(lin - quad) < 0.15
        assert lin > 0.1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mmd_quadratic(np.zeros((3, 2)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            mmd_linear(np.zeros((1, 2)), np.zeros((1, 2)))
        with pytest.raises(ValueError):
            mmd_unbiased(np.zeros((1, 2)), np.zeros((1, 2)))

    def test_dispatch(self, samples):
        a, b, _ = samples
        for est in ("quadratic", "unbiased", "linear"):
            value = mmd_between_embeddings(Tensor(a), Tensor(b),
                                           estimator=est)
            assert np.isfinite(value.item())
        with pytest.raises(ValueError):
            mmd_between_embeddings(Tensor(a), Tensor(b), estimator="bogus")

    def test_minimizing_mmd_aligns_distributions(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(loc=2.0, size=(60, 3)), requires_grad=True)
        y = Tensor(rng.normal(size=(60, 3)))
        k = GaussianKernel(2.0)
        opt = Adam([x], lr=0.05)
        start = mmd_quadratic(x, y, k).item()
        for _ in range(80):
            opt.zero_grad()
            mmd_quadratic(x, y, k).backward()
            opt.step()
        assert mmd_quadratic(x, y, k).item() < start * 0.3
