"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.recommend import Recommender
from repro.core.trainer import STTransRecTrainer

from tests.test_core_trainer import fast_config


@pytest.fixture(scope="module")
def trained(tiny_split):
    trainer = STTransRecTrainer(tiny_split, fast_config())
    trainer.fit()
    return trainer


class TestRoundTrip:
    def test_parameters_identical_after_reload(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, index = load_checkpoint(path)
        for (name, original), (_n2, restored) in zip(
                trained.model.named_parameters(),
                model.named_parameters()):
            np.testing.assert_array_equal(original.data, restored.data)

    def test_index_identical(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        _model, index = load_checkpoint(path)
        assert index.users.keys() == trained.index.users.keys()
        assert index.pois.keys() == trained.index.pois.keys()
        assert index.words.keys() == trained.index.words.keys()

    def test_config_round_trips(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, _ = load_checkpoint(path)
        assert model.config == trained.model.config

    def test_restored_model_scores_identically(self, trained, tmp_path,
                                               tiny_split):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, index = load_checkpoint(path)
        original = Recommender(trained.model, trained.index,
                               tiny_split.train, "shelbyville")
        restored = Recommender(model, index, tiny_split.train,
                               "shelbyville")
        user = tiny_split.test_users[0]
        np.testing.assert_allclose(
            [s for _, s in original.recommend(user, k=10)],
            [s for _, s in restored.recommend(user, k=10)],
        )

    def test_model_in_eval_mode(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, _ = load_checkpoint(path)
        assert not model.training

    def test_creates_parent_dirs(self, trained, tmp_path):
        path = tmp_path / "deep" / "dir" / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        assert path.exists()


class TestErrors:
    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_tampered_format_named_in_error(self, trained, tmp_path):
        """A manifest with the wrong format version is rejected with a
        message naming both the found and the expected format."""
        import json

        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"]).decode("utf-8"))
        manifest["format"] = "repro.checkpoint.v999"
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)

        with pytest.raises(ValueError) as excinfo:
            load_checkpoint(path)
        message = str(excinfo.value)
        assert "repro.checkpoint.v999" in message
        assert "repro.checkpoint.v1" in message

    def test_missing_format_field_rejected(self, trained, tmp_path):
        import json

        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"]).decode("utf-8"))
        del manifest["format"]
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)

        with pytest.raises(ValueError, match="expected"):
            load_checkpoint(path)


class TestSuffixNormalization:
    def test_suffixless_path_round_trips(self, trained, tmp_path):
        """save_checkpoint("ckpt") writes ckpt.npz (np.savez appends the
        suffix); load_checkpoint("ckpt") must open the same file."""
        path = tmp_path / "ckpt"
        save_checkpoint(trained.model, trained.index, path)
        assert (tmp_path / "ckpt.npz").exists()
        model, _index = load_checkpoint(path)
        for (name, original), (_n2, restored) in zip(
                trained.model.named_parameters(),
                model.named_parameters()):
            np.testing.assert_array_equal(original.data, restored.data)

    def test_foreign_suffix_normalized(self, trained, tmp_path):
        path = tmp_path / "model.ckpt"
        save_checkpoint(trained.model, trained.index, path)
        assert (tmp_path / "model.ckpt.npz").exists()
        load_checkpoint(path)

    def test_explicit_npz_still_works(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        assert path.exists()
        load_checkpoint(path)


class TestFormatV2:
    def _training_state(self, trained):
        from repro.core.checkpoint import TrainingState

        params = list(trained.model.parameters())
        return TrainingState(
            epochs_completed=3,
            global_step=41,
            optimizer_state={
                "step_count": 41,
                "m": [np.full_like(p.data, 0.5) for p in params],
                "v": [np.full_like(p.data, 0.25) for p in params],
            },
            rng_state=np.random.default_rng(9).bit_generator.state,
        )

    def test_v2_round_trips_training_state(self, trained, tmp_path):
        from repro.core.checkpoint import load_training_checkpoint

        path = tmp_path / "v2.npz"
        state = self._training_state(trained)
        save_checkpoint(trained.model, trained.index, path,
                        training_state=state)
        _model, _index, restored = load_training_checkpoint(path)
        assert restored.epochs_completed == 3
        assert restored.global_step == 41
        assert restored.optimizer_state["step_count"] == 41
        for saved, loaded in zip(state.optimizer_state["m"],
                                 restored.optimizer_state["m"]):
            np.testing.assert_array_equal(saved, loaded)
        assert restored.rng_state == state.rng_state

    def test_v2_loads_through_plain_load_checkpoint(self, trained,
                                                    tmp_path):
        """A serving-only reader ignores the training state cleanly."""
        path = tmp_path / "v2.npz"
        save_checkpoint(trained.model, trained.index, path,
                        training_state=self._training_state(trained))
        model, _index = load_checkpoint(path)
        for (name, original), (_n2, restored) in zip(
                trained.model.named_parameters(),
                model.named_parameters()):
            np.testing.assert_array_equal(original.data, restored.data)

    def test_v1_file_has_no_training_state(self, trained, tmp_path):
        from repro.core.checkpoint import load_training_checkpoint

        path = tmp_path / "v1.npz"
        save_checkpoint(trained.model, trained.index, path)
        _model, _index, state = load_training_checkpoint(path)
        assert state is None

    def test_save_replaces_atomically(self, trained, tmp_path):
        """No .tmp leftovers, and the second save fully replaces the
        first."""
        path = tmp_path / "atomic.npz"
        save_checkpoint(trained.model, trained.index, path)
        save_checkpoint(trained.model, trained.index, path,
                        training_state=self._training_state(trained))
        leftovers = list(tmp_path.glob("*.tmp*"))
        assert leftovers == []
        from repro.core.checkpoint import load_training_checkpoint

        _m, _i, state = load_training_checkpoint(path)
        assert state is not None
