"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.recommend import Recommender
from repro.core.trainer import STTransRecTrainer

from tests.test_core_trainer import fast_config


@pytest.fixture(scope="module")
def trained(tiny_split):
    trainer = STTransRecTrainer(tiny_split, fast_config())
    trainer.fit()
    return trainer


class TestRoundTrip:
    def test_parameters_identical_after_reload(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, index = load_checkpoint(path)
        for (name, original), (_n2, restored) in zip(
                trained.model.named_parameters(),
                model.named_parameters()):
            np.testing.assert_array_equal(original.data, restored.data)

    def test_index_identical(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        _model, index = load_checkpoint(path)
        assert index.users.keys() == trained.index.users.keys()
        assert index.pois.keys() == trained.index.pois.keys()
        assert index.words.keys() == trained.index.words.keys()

    def test_config_round_trips(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, _ = load_checkpoint(path)
        assert model.config == trained.model.config

    def test_restored_model_scores_identically(self, trained, tmp_path,
                                               tiny_split):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, index = load_checkpoint(path)
        original = Recommender(trained.model, trained.index,
                               tiny_split.train, "shelbyville")
        restored = Recommender(model, index, tiny_split.train,
                               "shelbyville")
        user = tiny_split.test_users[0]
        np.testing.assert_allclose(
            [s for _, s in original.recommend(user, k=10)],
            [s for _, s in restored.recommend(user, k=10)],
        )

    def test_model_in_eval_mode(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        model, _ = load_checkpoint(path)
        assert not model.training

    def test_creates_parent_dirs(self, trained, tmp_path):
        path = tmp_path / "deep" / "dir" / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        assert path.exists()


class TestErrors:
    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_tampered_format_named_in_error(self, trained, tmp_path):
        """A manifest with the wrong format version is rejected with a
        message naming both the found and the expected format."""
        import json

        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"]).decode("utf-8"))
        manifest["format"] = "repro.checkpoint.v999"
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)

        with pytest.raises(ValueError) as excinfo:
            load_checkpoint(path)
        message = str(excinfo.value)
        assert "repro.checkpoint.v999" in message
        assert "repro.checkpoint.v1" in message

    def test_missing_format_field_rejected(self, trained, tmp_path):
        import json

        path = tmp_path / "model.npz"
        save_checkpoint(trained.model, trained.index, path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"]).decode("utf-8"))
        del manifest["format"]
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)

        with pytest.raises(ValueError, match="expected"):
            load_checkpoint(path)
