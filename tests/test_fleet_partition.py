"""Deterministic partitioning and top-K merge rules for the fleet."""

import numpy as np
import pytest

from repro.fleet.partition import (
    group_by_shard,
    merge_topk,
    route_user,
    shard_for_user,
    split_catalogue,
)


class TestShardForUser:
    def test_stable_and_in_range(self):
        for idx in range(200):
            shard = shard_for_user(idx, 4)
            assert 0 <= shard < 4
            assert shard == shard_for_user(idx, 4)

    def test_sequential_indices_spread(self):
        # The multiplicative hash must break up contiguous index
        # ranges: 64 sequential users should hit every one of 4 shards.
        shards = {shard_for_user(i, 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard_world(self):
        assert all(shard_for_user(i, 1) == 0 for i in range(16))

    def test_invalid_num_shards(self):
        with pytest.raises(ValueError):
            shard_for_user(0, 0)


class TestRouteUser:
    def test_home_shard_when_alive(self):
        for idx in range(50):
            home = shard_for_user(idx, 4)
            assert route_user(idx, 4, [0, 1, 2, 3]) == home

    def test_failover_is_deterministic_and_live(self):
        live = [0, 2, 3]
        for idx in range(50):
            routed = route_user(idx, 4, live)
            assert routed in live
            assert routed == route_user(idx, 4, list(reversed(live)))

    def test_all_users_of_dead_shard_move_together(self):
        dead_home = {i for i in range(100)
                     if shard_for_user(i, 4) == 1}
        routed = {route_user(i, 4, [0, 2, 3]) for i in dead_home}
        assert len(routed) == 1

    def test_no_live_shards_raises(self):
        with pytest.raises(ValueError):
            route_user(0, 4, [])


class TestGroupByShard:
    def test_preserves_input_order_within_group(self):
        entries = [(100 + i, i) for i in range(40)]
        groups = group_by_shard(entries, 4, [0, 1, 2, 3])
        assert sorted(sum(groups.values(), [])) == sorted(entries)
        for shard, members in groups.items():
            positions = [entries.index(m) for m in members]
            assert positions == sorted(positions)
            assert all(shard_for_user(idx, 4) == shard
                       for _uid, idx in members)


class TestSplitCatalogue:
    def test_covers_catalogue_contiguously(self):
        for size, parts in [(10, 3), (17, 4), (5, 5), (100, 7)]:
            slices = split_catalogue(size, parts)
            assert slices[0][0] == 0 and slices[-1][1] == size
            for (a_lo, a_hi), (b_lo, b_hi) in zip(slices, slices[1:]):
                assert a_hi == b_lo

    def test_sizes_differ_by_at_most_one(self):
        sizes = [hi - lo for lo, hi in split_catalogue(17, 4)]
        assert max(sizes) - min(sizes) <= 1
        assert all(s > 0 for s in sizes)

    def test_more_parts_than_items(self):
        slices = split_catalogue(3, 8)
        assert slices == [(0, 1), (1, 2), (2, 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_catalogue(0, 2)
        with pytest.raises(ValueError):
            split_catalogue(4, 0)


class TestMergeTopk:
    def _partials(self, scores):
        # (position, poi_id, score) with poi_id = 1000 + position
        return [(pos, 1000 + pos, float(s))
                for pos, s in enumerate(scores)]

    def test_matches_engine_stable_argsort(self):
        rng = np.random.default_rng(7)
        scores = rng.standard_normal(50)
        scores[3] = scores[30]              # force a tie
        scores[11] = scores[40]
        order = np.argsort(-scores, kind="stable")[:10]
        expected = [(1000 + int(p), float(scores[p])) for p in order]
        assert merge_topk(self._partials(scores), 10) == expected

    def test_independent_of_supply_order(self):
        rng = np.random.default_rng(11)
        scores = rng.standard_normal(30)
        partials = self._partials(scores)
        merged = merge_topk(partials, 5)
        for seed in range(5):
            shuffled = list(partials)
            np.random.default_rng(seed).shuffle(shuffled)
            assert merge_topk(shuffled, 5) == merged

    def test_ties_break_by_catalogue_position(self):
        partials = [(5, 1005, 1.0), (2, 1002, 1.0), (9, 1009, 1.0)]
        assert merge_topk(partials, 3) == \
            [(1002, 1.0), (1005, 1.0), (1009, 1.0)]

    def test_k_larger_than_pool(self):
        partials = [(0, 1000, 2.0), (1, 1001, 1.0)]
        assert len(merge_topk(partials, 10)) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            merge_topk([], 0)
