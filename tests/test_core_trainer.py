"""Joint trainer tests on the tiny dataset."""

import numpy as np
import pytest

from repro.core.config import STTransRecConfig
from repro.core.trainer import STTransRecTrainer


def fast_config(**overrides):
    params = dict(
        embedding_dim=8,
        hidden_sizes=[8],
        epochs=2,
        pretrain_epochs=2,
        mmd_batch_size=16,
        batch_size=32,
        grid_shape=(4, 4),
        segmentation_threshold=0.2,
        seed=0,
    )
    params.update(overrides)
    return STTransRecConfig(**params)


@pytest.fixture(scope="module")
def trained(tiny_split):
    trainer = STTransRecTrainer(tiny_split, fast_config())
    result = trainer.fit()
    return trainer, result


class TestConstruction:
    def test_components_built(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config())
        assert trainer.source_cities == ["springfield"]
        assert len(trainer.source_interactions) == 1
        assert trainer.source_mmd_pool.size > 0
        assert trainer.target_mmd_pool.size > 0
        assert "shelbyville" in trainer.segmentations

    def test_mmd_pool_contains_resampled_draws(self, tiny_split):
        with_rs = STTransRecTrainer(tiny_split,
                                    fast_config(resample_alpha=1.0))
        without_rs = STTransRecTrainer(tiny_split,
                                       fast_config(resample_alpha=0.0))
        assert len(with_rs.target_mmd_pool) >= len(without_rs.target_mmd_pool)

    def test_pool_indices_valid(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config())
        assert trainer.source_mmd_pool.max() < trainer.index.num_pois
        assert trainer.source_mmd_pool.min() >= 0

    def test_mmd_pools_are_city_pure(self, tiny_split):
        """Source pool holds only source-city POIs; target pool only
        target-city POIs — mixing would corrupt the Eq. 10 estimate."""
        trainer = STTransRecTrainer(tiny_split, fast_config())
        city_of = {
            trainer.index.pois.index_of(p.poi_id): p.city
            for p in tiny_split.train.pois.values()
        }
        assert all(city_of[int(i)] == "springfield"
                   for i in trainer.source_mmd_pool)
        assert all(city_of[int(i)] == "shelbyville"
                   for i in trainer.target_mmd_pool)

    def test_pool_frequency_tracks_checkins_plus_resampling(self,
                                                            tiny_split):
        """Without resampling the pool is exactly the check-in multiset."""
        trainer = STTransRecTrainer(tiny_split,
                                    fast_config(resample_alpha=0.0))
        from collections import Counter
        pool_counts = Counter(int(i) for i in trainer.target_mmd_pool)
        checkin_counts = Counter(
            trainer.index.pois.index_of(r.poi_id)
            for r in tiny_split.train.checkins_in_city("shelbyville")
        )
        assert pool_counts == checkin_counts


class TestTraining:
    def test_history_length(self, trained):
        _trainer, result = trained
        assert result.epochs == 2
        assert np.isfinite(result.final_loss)

    def test_loss_components_tracked(self, trained):
        _trainer, result = trained
        stats = result.history[-1]
        assert stats.interaction_source > 0
        assert stats.interaction_target > 0
        assert stats.context_source > 0
        assert stats.mmd >= 0 or np.isfinite(stats.mmd)

    def test_interaction_loss_decreases(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config(epochs=6))
        result = trainer.fit()
        first = result.history[0].interaction_source
        last = result.history[-1].interaction_source
        assert last < first

    def test_model_in_eval_mode_after_fit(self, trained):
        trainer, _result = trained
        assert not trainer.model.training

    def test_deterministic_given_seed(self, tiny_split):
        a = STTransRecTrainer(tiny_split, fast_config())
        b = STTransRecTrainer(tiny_split, fast_config())
        a.fit()
        b.fit()
        np.testing.assert_array_equal(a.model.poi_embeddings.weight.data,
                                      b.model.poi_embeddings.weight.data)


class TestVariantFlags:
    def test_no_text_skips_context(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config(use_text=False))
        result = trainer.fit()
        assert result.history[-1].context_source == 0.0
        assert not hasattr(trainer, "source_contexts")

    def test_no_mmd_skips_transfer(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config(use_mmd=False))
        result = trainer.fit()
        assert result.history[-1].mmd == 0.0

    def test_anchor_zero_supported(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config(user_anchor=0.0))
        trainer.fit()

    def test_multi_kernel_mmd_supported(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split,
                                    fast_config(mmd_kernel="multi"))
        result = trainer.fit()
        assert result.history[-1].mmd >= 0.0 or True  # trained, finite
        from repro.transfer.kernels import MultiGaussianKernel
        assert isinstance(trainer._kernel, MultiGaussianKernel)

    def test_linear_estimator_supported(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split,
                                    fast_config(mmd_estimator="linear"))
        trainer.fit()


class TestEarlyStopping:
    def test_stops_when_loss_plateaus(self, tiny_split):
        # An enormous min_loss_delta means nothing after the first epoch
        # ever "improves", so training stops after 1 + patience epochs.
        trainer = STTransRecTrainer(
            tiny_split,
            fast_config(epochs=10, patience=2, min_loss_delta=1e9),
        )
        result = trainer.fit()
        assert result.epochs == 3

    def test_runs_full_budget_when_improving(self, tiny_split):
        trainer = STTransRecTrainer(
            tiny_split,
            fast_config(epochs=3, patience=3, min_loss_delta=0.0),
        )
        result = trainer.fit()
        assert result.epochs == 3

    def test_disabled_by_default(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config(epochs=3))
        assert trainer.config.patience is None
        assert trainer.fit().epochs == 3

    def test_invalid_patience_rejected(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            fast_config(patience=0)


class TestEpochCallback:
    def test_called_once_per_epoch(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config(epochs=3))
        seen = []
        trainer.fit(epoch_callback=lambda tr, stats: seen.append(
            (tr is trainer, stats.epoch)))
        assert seen == [(True, 0), (True, 1), (True, 2)]

    def test_callback_exception_propagates(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config(epochs=2))

        def boom(tr, stats):
            raise RuntimeError("observer failed")

        import pytest as _pytest
        with _pytest.raises(RuntimeError, match="observer failed"):
            trainer.fit(epoch_callback=boom)


class TestPretraining:
    def test_user_warm_start_near_profile_mean(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config())
        trainer.pretrain()
        user_id = next(iter(tiny_split.train.users))
        u = trainer.index.users.index_of(user_id)
        rows = [trainer.index.pois.index_of(r.poi_id)
                for r in tiny_split.train.user_profile(user_id)]
        expected = trainer.model.poi_embeddings.weight.data[rows].mean(axis=0)
        np.testing.assert_allclose(
            trainer.model.user_embeddings.weight.data[u], expected
        )

    def test_pretrain_moves_poi_embeddings(self, tiny_split):
        trainer = STTransRecTrainer(tiny_split, fast_config())
        before = trainer.model.poi_embeddings.weight.data.copy()
        trainer.pretrain()
        assert not np.allclose(before,
                               trainer.model.poi_embeddings.weight.data)
