"""Gates for the pluggable array backend (``repro.nn.backend``).

Three layers of guarantee:

1. **Reference bit-identity** — the ``"reference"`` backend reproduces
   the frozen pre-refactor golden outputs (``tests/data/backend_golden
   .npz``) *bit for bit*, in both precision policies, for the nn-level
   workload and a full train-step + checkpoint run.
2. **Optimized agreement** — the ``"optimized"`` backend reproduces the
   same goldens within the documented tolerances (its scatter kernels
   and fused losses re-associate float sums), while its Adam chain,
   sigmoid/softplus and dropout kernels stay bit-identical to the
   reference.
3. **Plumbing** — registry semantics, scoped/process selection,
   ``REPRO_BACKEND`` fallback, ``PerfConfig`` integration, dtype-policy
   interaction, and the profiler's counted-once scratch accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import backend as backend_mod
from repro.nn.backend import (
    ArrayBackend,
    OptimizedBackend,
    active_backend,
    available_backends,
    backend_name,
    get_backend,
    register_backend,
    set_default_backend,
    using_backend,
)
from repro.nn.dtypes import using_dtype
from repro.nn.losses import bce_with_logits, negative_sampling_loss
from repro.nn.tensor import Tensor, softplus, stable_sigmoid
from tests.golden_backend import GOLDEN_PATH, nn_case, train_step_case

# Documented agreement gates for the optimized backend (see
# docs/performance.md).
TOLERANCES = {
    "f64": dict(rtol=1e-9, atol=1e-12),
    "f32": dict(rtol=1e-4, atol=1e-6),
}

CASES = {"nn": nn_case, "train": train_step_case}


@pytest.fixture(scope="module")
def golden():
    with np.load(GOLDEN_PATH, allow_pickle=False) as archive:
        return {key: np.array(archive[key]) for key in archive.files}


def _golden_slice(golden, case, precision):
    prefix = f"{case}/{precision}/"
    out = {k[len(prefix):]: v for k, v in golden.items()
           if k.startswith(prefix)}
    assert out, f"no golden arrays under {prefix!r}"
    return out


# ----------------------------------------------------------------------
# 1. Reference backend: bit-identical to the pre-refactor capture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("precision", ["f64", "f32"])
@pytest.mark.parametrize("case", ["nn", "train"])
def test_reference_backend_is_bit_identical_to_golden(
        golden, case, precision):
    with using_backend("reference"):
        actual = CASES[case](precision)
    expected = _golden_slice(golden, case, precision)
    assert set(actual) == set(expected)
    for name in sorted(expected):
        a, e = np.asarray(actual[name]), expected[name]
        assert a.dtype == e.dtype, f"{case}/{precision}/{name}: dtype"
        assert a.shape == e.shape, f"{case}/{precision}/{name}: shape"
        assert a.tobytes() == e.tobytes(), \
            f"{case}/{precision}/{name}: bits differ"


# ----------------------------------------------------------------------
# 2. Optimized backend: same goldens within documented tolerances
# ----------------------------------------------------------------------
@pytest.mark.parametrize("precision", ["f64", "f32"])
@pytest.mark.parametrize("case", ["nn", "train"])
def test_optimized_backend_matches_golden_within_tolerance(
        golden, case, precision):
    with using_backend("optimized"):
        actual = CASES[case](precision)
    expected = _golden_slice(golden, case, precision)
    tol = TOLERANCES[precision]
    assert set(actual) == set(expected)
    for name in sorted(expected):
        a, e = np.asarray(actual[name]), expected[name]
        assert a.dtype == e.dtype, f"{case}/{precision}/{name}: dtype"
        if not np.issubdtype(e.dtype, np.floating):
            assert np.array_equal(a, e), f"{case}/{precision}/{name}"
            continue
        np.testing.assert_allclose(
            a, e, err_msg=f"{case}/{precision}/{name}", **tol)


# ----------------------------------------------------------------------
# Kernel-level contracts between the two CPU backends
# ----------------------------------------------------------------------
@pytest.fixture
def ref():
    return get_backend("reference")


@pytest.fixture
def opt():
    return get_backend("optimized")


def test_adam_update_bit_identical(ref, opt):
    rng = np.random.default_rng(0)
    shape = (7, 5)
    grad = rng.normal(size=shape)
    param = rng.normal(size=shape)
    for weight_decay in (0.0, 1e-3):
        m_r, v_r = np.zeros(shape), np.zeros(shape)
        m_o, v_o = np.zeros(shape), np.zeros(shape)
        for step in range(1, 6):
            bias1 = 1.0 - 0.9 ** step
            bias2 = 1.0 - 0.999 ** step
            dec_r = ref.adam_update(m_r, v_r, grad, 1e-2, 0.9, 0.999,
                                    1e-8, bias1, bias2,
                                    weight_decay=weight_decay, param=param)
            dec_o = opt.adam_update(m_o, v_o, grad, 1e-2, 0.9, 0.999,
                                    1e-8, bias1, bias2,
                                    weight_decay=weight_decay, param=param)
            assert dec_r.tobytes() == dec_o.tobytes()
            assert m_r.tobytes() == m_o.tobytes()
            assert v_r.tobytes() == v_o.tobytes()


def test_sigmoid_softplus_dropout_bit_identical(ref, opt):
    x = np.linspace(-40.0, 40.0, 101)
    assert ref.stable_sigmoid(x).tobytes() == \
        opt.stable_sigmoid(x).tobytes()
    assert ref.softplus(x).tobytes() == opt.softplus(x).tobytes()
    mask_r = ref.dropout_mask(np.random.default_rng(3), (16, 8), 0.8,
                              np.float64)
    mask_o = opt.dropout_mask(np.random.default_rng(3), (16, 8), 0.8,
                              np.float64)
    assert mask_r.tobytes() == mask_o.tobytes()


def test_fused_kernels_return_owned_arrays(opt):
    """Kernel outputs that feed the autograd graph must not alias
    scratch — a later call with different data must not mutate them."""
    x = np.linspace(-3.0, 3.0, 33)
    first = opt.stable_sigmoid(x)
    snapshot = first.copy()
    opt.stable_sigmoid(x + 1.0)
    assert np.array_equal(first, snapshot)

    vals, dz = opt.bce_terms(x, np.ones_like(x))
    vals_snap, dz_snap = vals.copy(), dz.copy()
    opt.bce_terms(x - 2.0, np.zeros_like(x))
    assert np.array_equal(vals, vals_snap)
    assert np.array_equal(dz, dz_snap)


def test_scatter_add_matches_reference_within_tolerance(ref, opt):
    rng = np.random.default_rng(7)
    ids = rng.integers(0, 11, size=64)
    rows = rng.normal(size=(64, 6))

    t_ref = np.zeros((11, 6))
    t_opt = np.zeros((11, 6))
    ref.add_at(t_ref, ids, rows)
    opt.add_at(t_opt, ids, rows)
    np.testing.assert_allclose(t_opt, t_ref, rtol=1e-9, atol=1e-12)

    u_ref, s_ref = ref.coalesce_rows(ids, rows)
    u_opt, s_opt = opt.coalesce_rows(ids, rows)
    assert np.array_equal(u_ref, u_opt)
    np.testing.assert_allclose(s_opt, s_ref, rtol=1e-9, atol=1e-12)


def test_optimized_add_at_fallback_paths(opt):
    # Boolean-mask index: not the row-gather pattern -> np.add.at path.
    target = np.zeros(10)
    mask = np.zeros(10, dtype=bool)
    mask[[1, 4, 4]] = True
    expected = target.copy()
    np.add.at(expected, mask, 2.5)
    opt.add_at(target, mask, 2.5)
    assert np.array_equal(target, expected)

    # Tuple (fancy 2-d) index.
    target = np.zeros((4, 4))
    idx = (np.array([0, 0, 3]), np.array([1, 1, 2]))
    expected = target.copy()
    np.add.at(expected, idx, np.array([1.0, 2.0, 3.0]))
    opt.add_at(target, idx, np.array([1.0, 2.0, 3.0]))
    assert np.array_equal(target, expected)

    # Empty index: must be a no-op, not a crash.
    target = np.zeros((5, 3))
    opt.add_at(target, np.array([], dtype=np.int64), np.zeros((0, 3)))
    assert not target.any()


def test_fused_losses_match_reference_graph(ref, opt):
    rng = np.random.default_rng(13)
    logits = rng.normal(scale=4.0, size=24)
    labels = (rng.random(24) < 0.5).astype(np.float64)

    results = {}
    for name in ("reference", "optimized"):
        with using_backend(name):
            t = Tensor(logits.copy(), requires_grad=True)
            loss = bce_with_logits(t, labels)
            loss.backward()
            pos = Tensor(rng_scores(0), requires_grad=True)
            neg = Tensor(rng_scores(1).reshape(4, 5), requires_grad=True)
            ns = negative_sampling_loss(pos, neg)
            ns.backward()
            results[name] = (float(loss.data), np.array(t.grad),
                             float(ns.data), np.array(pos.grad),
                             np.array(neg.grad))
    for a, b in zip(results["reference"], results["optimized"]):
        np.testing.assert_allclose(b, a, rtol=1e-9, atol=1e-12)


def rng_scores(salt: int) -> np.ndarray:
    return np.random.default_rng(40 + salt).normal(scale=3.0,
                                                   size=(20 if salt else 4))


# ----------------------------------------------------------------------
# dtype-policy interaction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["reference", "optimized"])
def test_backend_respects_dtype_policy(name):
    be = get_backend(name)
    with using_dtype("f32"):
        assert be.coerce([1, 2, 3]).dtype == np.float32
    with using_dtype("f64"):
        assert be.coerce([1, 2, 3]).dtype == np.float64
    # The kernels preserve the (already policy-coerced) input width.
    x32 = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
    assert be.stable_sigmoid(x32).dtype == np.float32
    assert be.softplus(x32).dtype == np.float32


@pytest.mark.parametrize("name", ["reference", "optimized"])
def test_f32_training_step_stays_f32(name):
    with using_backend(name), using_dtype("f32"):
        t = Tensor(np.linspace(-2.0, 2.0, 12, dtype=np.float32),
                   requires_grad=True)
        loss = bce_with_logits(t, np.zeros(12))
        loss.backward()
        assert t.data.dtype == np.float32
        assert np.asarray(t.grad).dtype == np.float32


# ----------------------------------------------------------------------
# Profiler accounting: scratch counted once, reuse is free
# ----------------------------------------------------------------------
def test_scratch_bytes_counted_exactly_once():
    be = OptimizedBackend()
    buf = be.scratch("unit", (8, 4), np.float64)
    assert be.array_bytes(buf) == buf.nbytes      # creation: counted
    assert be.array_bytes(buf) == 0               # reuse: free
    again = be.scratch("unit", (8, 4), np.float64)
    assert again is buf
    assert be.array_bytes(again) == 0
    fresh = np.zeros((8, 4))
    assert be.array_bytes(fresh) == fresh.nbytes  # unpooled: plain nbytes


def test_scratch_pool_is_bounded_and_thread_local():
    import threading

    be = OptimizedBackend()
    for i in range(backend_mod._SCRATCH_SHAPES_PER_TAG + 5):
        be.scratch("bound", (i + 1,), np.float64)
    stats = be.scratch_stats()
    assert stats["buffers_created"] == backend_mod._SCRATCH_SHAPES_PER_TAG + 5
    assert len(be._pool._by_tag["bound"]) == \
        backend_mod._SCRATCH_SHAPES_PER_TAG

    main_buf = be.scratch("tl", (4,), np.float64)
    seen = {}

    def worker():
        seen["buf"] = be.scratch("tl", (4,), np.float64)

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert seen["buf"] is not main_buf


def test_reference_array_bytes_is_nbytes():
    be = get_backend("reference")
    arr = np.zeros((3, 3))
    assert be.array_bytes(arr) == arr.nbytes
    assert be.array_bytes(arr) == arr.nbytes      # never "counted once"


# ----------------------------------------------------------------------
# Registry / selection plumbing
# ----------------------------------------------------------------------
def test_builtin_backends_listed_first():
    names = available_backends()
    assert names[0] == "reference"
    assert names[1] == "optimized"


def test_get_backend_unknown_name_errors():
    with pytest.raises(ValueError, match="unknown array backend"):
        get_backend("definitely-not-a-backend")


def test_get_backend_caches_instances():
    assert get_backend("optimized") is get_backend("optimized")
    assert isinstance(get_backend("reference"), ArrayBackend)


def test_register_backend_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("reference", ArrayBackend)


@pytest.fixture
def custom_backend_name():
    name = "test-custom"
    yield name
    with backend_mod._lock:
        backend_mod._FACTORIES.pop(name, None)
        backend_mod._INSTANCES.pop(name, None)


def test_custom_backend_dispatch(custom_backend_name):
    calls = []

    class SpyBackend(ArrayBackend):
        name = custom_backend_name

        def exp(self, x, *args, **kwargs):
            calls.append(np.shape(x))
            return np.exp(x, *args, **kwargs)

    register_backend(custom_backend_name, SpyBackend)
    assert custom_backend_name in available_backends()
    with using_backend(custom_backend_name):
        out = Tensor(np.array([0.0, 1.0])).exp()
    assert calls == [(2,)]
    np.testing.assert_allclose(out.data, np.exp([0.0, 1.0]))


def test_using_backend_restores_previous():
    before = backend_name()
    with using_backend("optimized") as be:
        assert be is active_backend()
        assert backend_name() == "optimized"
        with using_backend("reference"):
            assert backend_name() == "reference"
        assert backend_name() == "optimized"
    assert backend_name() == before


def test_set_default_backend_returns_previous():
    before = backend_name()
    try:
        assert set_default_backend("optimized") == before
        assert backend_name() == "optimized"
        assert active_backend() is get_backend("optimized")
    finally:
        set_default_backend(before)


def test_env_var_fallback_warns(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
    with pytest.warns(RuntimeWarning, match="unknown backend"):
        assert backend_mod._initial_name() == "reference"
    monkeypatch.setenv("REPRO_BACKEND", "optimized")
    assert backend_mod._initial_name() == "optimized"
    monkeypatch.delenv("REPRO_BACKEND")
    assert backend_mod._initial_name() == "reference"


# ----------------------------------------------------------------------
# PerfConfig integration
# ----------------------------------------------------------------------
def test_perf_config_validates_backend():
    from repro.perf.config import PerfConfig

    with pytest.raises(ValueError, match="backend"):
        PerfConfig(backend="no-such-backend")
    assert PerfConfig(backend="optimized").backend_name == "optimized"
    assert PerfConfig.reference().backend == "reference"


def test_perf_config_none_backend_tracks_process_default():
    from repro.perf.config import PerfConfig

    config = PerfConfig()
    assert config.backend is None
    assert config.backend_name == backend_name()
    with using_backend("optimized"):
        assert config.backend_name == "optimized"
