"""Online fold-in updater tests."""

import numpy as np
import pytest

from repro.core.online import OnlineUserUpdater
from repro.core.trainer import STTransRecTrainer

from tests.test_core_trainer import fast_config


@pytest.fixture(scope="module")
def trained(tiny_split):
    trainer = STTransRecTrainer(tiny_split, fast_config(epochs=4))
    trainer.fit()
    return trainer


@pytest.fixture()
def updater(trained):
    return OnlineUserUpdater(trained.model, trained.index, rng=0)


def target_pois(tiny_split):
    return [p.poi_id for p in tiny_split.train.pois_in_city("shelbyville")]


class TestUpdate:
    def test_only_target_user_row_changes(self, trained, updater,
                                          tiny_split):
        user = tiny_split.test_users[0]
        pois = target_pois(tiny_split)
        before = trained.model.user_vectors()
        poi_before = trained.model.poi_vectors()
        updater.update(user, pois[:2], pois)
        after = trained.model.user_vectors()
        u = trained.index.users.index_of(user)
        assert not np.allclose(before[u], after[u])
        mask = np.ones(len(before), dtype=bool)
        mask[u] = False
        np.testing.assert_array_equal(before[mask], after[mask])
        np.testing.assert_array_equal(poi_before,
                                      trained.model.poi_vectors())

    def test_observed_pois_rank_higher_after_update(self, trained,
                                                    tiny_split):
        updater = OnlineUserUpdater(trained.model, trained.index,
                                    learning_rate=0.1, steps=60, rng=0)
        user = tiny_split.test_users[1]
        pois = target_pois(tiny_split)
        observed = pois[:2]
        indices = [pois.index(p) for p in observed]
        before = updater.score_after_update(user, pois)
        updater.update(user, observed, pois)
        after = updater.score_after_update(user, pois)
        # BPR optimizes relative ordering: the observed POIs must gain
        # against the candidate average.
        gain = (after[indices].mean() - after.mean())
        baseline = (before[indices].mean() - before.mean())
        assert gain > baseline

    def test_returns_updated_row(self, trained, updater, tiny_split):
        user = tiny_split.test_users[0]
        pois = target_pois(tiny_split)
        row = updater.update(user, pois[:1], pois)
        u = trained.index.users.index_of(user)
        np.testing.assert_array_equal(
            row, trained.model.user_vectors()[u]
        )

    def test_restores_training_mode(self, trained, updater, tiny_split):
        trained.model.train()
        pois = target_pois(tiny_split)
        updater.update(tiny_split.test_users[0], pois[:1], pois)
        assert trained.model.training
        trained.model.eval()


class TestValidation:
    def test_unknown_user_rejected(self, updater, tiny_split):
        pois = target_pois(tiny_split)
        with pytest.raises(KeyError):
            updater.update(10**9, pois[:1], pois)

    def test_empty_checkins_rejected(self, updater, tiny_split):
        pois = target_pois(tiny_split)
        with pytest.raises(ValueError):
            updater.update(tiny_split.test_users[0], [], pois)

    def test_empty_pool_rejected(self, updater, tiny_split):
        pois = target_pois(tiny_split)
        with pytest.raises(ValueError):
            updater.update(tiny_split.test_users[0], pois[:1], pois[:1])

    def test_invalid_hyperparams(self, trained):
        with pytest.raises(ValueError):
            OnlineUserUpdater(trained.model, trained.index,
                              learning_rate=0)
        with pytest.raises(ValueError):
            OnlineUserUpdater(trained.model, trained.index, steps=0)
