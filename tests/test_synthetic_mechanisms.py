"""End-to-end mechanism tests: the generator creates the statistical
properties the model's components are designed to exploit, and the
trained model demonstrably exploits them.
"""

import numpy as np
import pytest

from repro.analysis import EmbeddingSpace, embedding_mmd
from repro.baselines.features import common_words, words_by_city
from repro.core.trainer import STTransRecTrainer

from tests.test_core_trainer import fast_config


class TestGeneratorCreatesTheFourProperties:
    def test_city_dependent_vocabulary_gap(self, tiny_dataset):
        """Property 2: each city has words no other city uses."""
        dataset, _ = tiny_dataset
        per_city = words_by_city(dataset)
        shared = common_words(dataset)
        for city, words in per_city.items():
            exclusive = words - shared
            assert exclusive, f"{city} has no city-specific vocabulary"

    def test_spatial_imbalance(self, tiny_dataset, tiny_truth):
        """Property 3: check-ins concentrate in accessible regions
        (measured against the generator's true region assignment)."""
        dataset, _ = tiny_dataset
        counts = {}
        for record in dataset.checkins_in_city("shelbyville"):
            region = tiny_truth.poi_regions[record.poi_id]
            counts[region] = counts.get(region, 0) + 1
        values = sorted(counts.values(), reverse=True)
        assert len(values) > 1
        assert values[0] > 1.5 * values[-1]

    def test_crossing_sparsity(self, tiny_dataset, tiny_truth):
        """Property 4: crossing users' target check-ins are sparse."""
        dataset, _ = tiny_dataset
        for user in tiny_truth.crossing_user_ids:
            profile = dataset.user_profile(user)
            target = [r for r in profile if r.city == "shelbyville"]
            assert 0 < len(target) <= len(profile) * 0.5

    def test_shared_interests_across_cities(self, tiny_dataset):
        """Property 1: every topic has POIs in both cities."""
        dataset, _ = tiny_dataset
        by_city_topic = {}
        for poi in dataset.pois.values():
            by_city_topic.setdefault(poi.city, set()).add(poi.topic)
        topic_sets = list(by_city_topic.values())
        assert topic_sets[0] & topic_sets[1]


class TestModelExploitsTheProperties:
    @pytest.fixture(scope="class")
    def spaces(self, tiny_split):
        """Embedding spaces of the full model and the no-MMD variant."""
        out = {}
        for label, overrides in (("full", {}),
                                 ("no_mmd", {"use_mmd": False})):
            trainer = STTransRecTrainer(
                tiny_split, fast_config(epochs=4, pretrain_epochs=8,
                                        **overrides))
            trainer.fit()
            out[label] = EmbeddingSpace(
                vectors=trainer.model.poi_vectors(),
                index=trainer.index,
                dataset=tiny_split.train,
            )
        return out

    def test_mmd_training_shrinks_city_gap(self, spaces):
        gap_full = embedding_mmd(spaces["full"], "springfield",
                                 "shelbyville")
        gap_ablated = embedding_mmd(spaces["no_mmd"], "springfield",
                                    "shelbyville")
        assert gap_full < gap_ablated

    def test_embeddings_encode_topics(self, spaces, tiny_dataset):
        """Same-topic POIs sit closer than different-topic POIs."""
        dataset, _ = tiny_dataset
        space = spaces["full"]
        normalized = space.normalized()
        rows_by_topic = {}
        for poi in dataset.pois.values():
            rows_by_topic.setdefault(poi.topic, []).append(
                space.index.pois.index_of(poi.poi_id))
        same, different = [], []
        topics = sorted(rows_by_topic)
        for t in topics:
            block = normalized[rows_by_topic[t]]
            centroid = block.mean(axis=0)
            same.append(float(block @ centroid).__abs__()
                        if block.ndim == 1 else float(
                            (block @ centroid).mean()))
            for other in topics:
                if other != t:
                    other_c = normalized[rows_by_topic[other]].mean(axis=0)
                    different.append(float(centroid @ other_c))
        assert np.mean(same) > np.mean(different)
