"""The serving fleet: shared-parameter attach, routing parity with the
single-process service, and degradation under injected shard crashes."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.fleet.params import ServingParameterBlock, attach_serving_engine
from repro.fleet.router import ShardRouter
from repro.parallel.supervisor import SupervisionConfig
from repro.reliability import Fault, FaultPlan
from repro.serving.engine import InferenceEngine
from repro.serving.service import RecommendationService

TARGET = "shelbyville"
K = 5


@pytest.fixture(scope="module")
def world(tiny_dataset):
    dataset, _truth = tiny_dataset
    index = dataset.build_index()
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       STTransRecConfig(embedding_dim=8, seed=3))
    model.eval()
    return model, index, dataset


@pytest.fixture(scope="module")
def reference(world):
    """Single-process answers with the cache off: the parity oracle."""
    model, index, dataset = world
    with RecommendationService(model, index, dataset, TARGET,
                               cache_size=0, use_batcher=False) as service:
        users = sorted(dataset.users)
        return users, service.recommend_many(users, k=K)


class TestServingParameterBlock:
    def test_attached_engine_scores_bit_identically(self, world):
        model, index, dataset = world
        engine = InferenceEngine.from_model(model, index, dataset, TARGET)
        indices = list(range(min(6, index.num_users)))
        expected = engine.top_k_catalogue(indices, K)
        with ServingParameterBlock.from_engine(engine) as block:
            attached, client = attach_serving_engine(block.manifest)
            try:
                assert attached.top_k_catalogue(indices, K) == expected
            finally:
                # The engine's buffers alias the client's mapping; drop
                # them first so the mapping can unmap cleanly in-process.
                del attached
                client.close()

    def test_attached_views_are_read_only(self, world):
        model, index, dataset = world
        engine = InferenceEngine.from_model(model, index, dataset, TARGET)
        with ServingParameterBlock.from_engine(engine) as block:
            attached, client = attach_serving_engine(block.manifest)
            try:
                state = attached.serving_state()
                assert any(not arr.flags.writeable
                           for arr in state.values())
            finally:
                del state, attached
                client.close()

    def test_republish_is_visible_through_attached_views(self, world):
        model, index, dataset = world
        engine = InferenceEngine.from_model(model, index, dataset, TARGET)
        state = engine.serving_state()
        with ServingParameterBlock.from_engine(engine) as block:
            attached, client = attach_serving_engine(block.manifest)
            try:
                bumped = {name: (arr + 1.0
                                 if np.issubdtype(arr.dtype, np.floating)
                                 else arr)
                          for name, arr in state.items()}
                block.publish(bumped)
                new_state = attached.serving_state()
                for name, arr in bumped.items():
                    np.testing.assert_array_equal(new_state[name], arr)
                del new_state
            finally:
                del attached
                client.close()


class TestRouterParity:
    def test_recommend_many_bit_identical_to_single_process(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        for num_shards in (1, 2, 3):
            with ShardRouter(model, index, dataset, TARGET,
                             num_shards=num_shards) as router:
                assert router.recommend_many(users, k=K) == expected

    def test_recommend_single_user_and_unknowns(self, world, reference):
        model, index, dataset = world
        users, expected = reference
        with ShardRouter(model, index, dataset, TARGET,
                         num_shards=2) as router:
            probe = users[0]
            assert router.recommend(probe, k=K) == expected[probe]
            with pytest.raises(KeyError):
                router.recommend(10**9, k=K)
            # Unknown users are skipped, not raised, in the batch path.
            got = router.recommend_many([probe, 10**9], k=K)
            assert set(got) == {probe}
            with pytest.raises(ValueError):
                router.recommend_many(users, k=0)

    def test_fanout_matches_whole_catalogue_ranking(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        with ShardRouter(model, index, dataset, TARGET,
                         num_shards=3) as router:
            for user in users[:6]:
                assert router.recommend_fanout(user, k=K) == expected[user]

    def test_duplicate_users_collapse(self, world, reference):
        model, index, dataset = world
        users, expected = reference
        probe = users[1]
        with ShardRouter(model, index, dataset, TARGET,
                         num_shards=2) as router:
            got = router.recommend_many([probe, probe, probe], k=K)
        assert got == {probe: expected[probe]}


class TestRouterDegradation:
    def _supervision(self):
        return SupervisionConfig(step_timeout=60.0, max_respawns=2,
                                 respawn_backoff=0.01)

    def test_shard_crash_respawn_keeps_answers_identical(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        plan = FaultPlan([Fault.crash(worker=1, step=2)])
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan,
                         supervision=self._supervision()) as router:
            for _wave in range(4):
                assert router.recommend_many(users, k=K) == expected
            stats = router.stats()
        assert stats["faults"]["crashes"] >= 1
        assert stats["faults"]["respawns"] >= 1
        assert sorted(stats["live_shards"]) == [0, 1]
        assert stats["shard_requests"] > 0
        assert not mp.active_children()

    def test_fanout_survives_shard_crash(self, world, reference):
        model, index, dataset = world
        users, expected = reference
        # The shard's request sequence is the step coordinate (0-based):
        # the very first fanout request to shard 0 kills it.
        plan = FaultPlan([Fault.crash(worker=0, step=0)])
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan,
                         supervision=self._supervision()) as router:
            probe = users[2]
            assert router.recommend_fanout(probe, k=K) == expected[probe]
            stats = router.stats()
        assert stats["faults"]["crashes"] >= 1

    def test_close_is_idempotent_and_leaks_nothing(self, world):
        model, index, dataset = world
        router = ShardRouter(model, index, dataset, TARGET, num_shards=2)
        router.recommend_many(sorted(dataset.users)[:4], k=K)
        router.close()
        router.close()
        assert not mp.active_children()

    def test_invalid_num_shards(self, world):
        model, index, dataset = world
        with pytest.raises(ValueError):
            ShardRouter(model, index, dataset, TARGET, num_shards=0)


class TestShardTelemetry:
    def test_per_shard_logs_aggregate_through_metrics_report(
            self, world, tmp_path):
        from repro.obs.export import load_run_state_tree

        model, index, dataset = world
        users = sorted(dataset.users)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         telemetry_dir=tmp_path) as router:
            router.recommend_many(users, k=K)
        logs = sorted(p.parent.name for p in tmp_path.glob("*/events.jsonl"))
        assert logs == ["shard-0", "shard-1"]
        registry, _tracer, num_runs, num_logs = load_run_state_tree(tmp_path)
        assert num_logs == 2 and num_runs == 2
        total = sum(metric.value for key, metric in registry.items()
                    if key.startswith("fleet.shard.users"))
        assert total == len(users)

    def test_router_registry_sees_shard_counters(self, world):
        from repro.obs.metrics import MetricsRegistry

        model, index, dataset = world
        users = sorted(dataset.users)
        registry = MetricsRegistry()
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         registry=registry) as router:
            router.recommend_many(users, k=K)
            merged = router.merged_shard_registry()
        shard_users = sum(metric.value for key, metric in merged.items()
                          if key.startswith("fleet.shard.users"))
        assert shard_users == len(users)
        assert registry.histogram(
            "fleet.router.request_latency_ms", outcome="ok").count == 1

    def test_latency_observed_with_error_outcome_on_failure(self, world):
        from repro.fleet.router import FleetUnavailableError
        from repro.obs.metrics import MetricsRegistry

        model, index, dataset = world
        users = sorted(dataset.users)
        registry = MetricsRegistry()
        plan = FaultPlan([Fault.crash(worker=0, step=0)])
        with ShardRouter(model, index, dataset, TARGET, num_shards=1,
                         fault_plan=plan, registry=registry,
                         supervision=SupervisionConfig(
                             step_timeout=60.0, max_respawns=0,
                             respawn_backoff=0.01)) as router:
            with pytest.raises(FleetUnavailableError):
                router.recommend_many(users, k=K)
        # The failed request is *not* invisible to the latency
        # histogram: it lands under its own outcome label.
        assert registry.histogram(
            "fleet.router.request_latency_ms", outcome="error").count == 1
        assert registry.histogram(
            "fleet.router.request_latency_ms", outcome="ok").count == 0


class TestFleetUnavailable:
    def test_total_loss_names_every_shard_slot(self, world):
        from repro.fleet.router import FleetUnavailableError

        model, index, dataset = world
        users = sorted(dataset.users)
        # Both shards crash on their first request with no respawn
        # budget: the plain path must say *which* slots died and why,
        # not surface a bare pipe error.
        plan = FaultPlan([Fault.crash(worker=0, step=0),
                          Fault.crash(worker=1, step=0)])
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan,
                         supervision=SupervisionConfig(
                             step_timeout=60.0, max_respawns=0,
                             respawn_backoff=0.01)) as router:
            with pytest.raises(FleetUnavailableError) as excinfo:
                router.recommend_many(users, k=K)
        message = str(excinfo.value)
        assert "no live shards" in message
        assert "shard 0" in message and "shard 1" in message
        assert set(excinfo.value.shard_states) == {0, 1}
        assert not mp.active_children()

    def test_fleet_unavailable_is_a_worker_failure(self):
        from repro.fleet.router import FleetUnavailableError
        from repro.parallel.supervisor import WorkerFailure

        error = FleetUnavailableError(3, {0: "removed after 2 respawns"})
        assert isinstance(error, WorkerFailure)
        assert "removed after 2 respawns" in str(error)


class TestCloseSafety:
    def test_close_after_failed_spawn_leaks_nothing(self, world,
                                                    monkeypatch):
        model, index, dataset = world
        original = ShardRouter._spawn_shard

        def failing_spawn(self, shard_id, incarnation):
            if shard_id == 1:
                raise RuntimeError("spawn exploded")
            return original(self, shard_id, incarnation)

        monkeypatch.setattr(ShardRouter, "_spawn_shard", failing_spawn)
        # Shard 0 starts, shard 1's spawn raises: the constructor must
        # propagate the error but reap shard 0 and free the shm block.
        with pytest.raises(RuntimeError, match="spawn exploded"):
            ShardRouter(model, index, dataset, TARGET, num_shards=2)
        assert not mp.active_children()

    def test_double_close_after_failed_spawn_is_safe(self, world,
                                                     monkeypatch):
        model, index, dataset = world
        created = []

        def exploding_spawn(self, shard_id, incarnation):
            created.append(self)
            raise RuntimeError("no shards at all")

        monkeypatch.setattr(ShardRouter, "_spawn_shard", exploding_spawn)
        with pytest.raises(RuntimeError, match="no shards at all"):
            ShardRouter(model, index, dataset, TARGET, num_shards=2)
        # The constructor already closed once on its failure path;
        # closing the half-built router again must be a no-op.
        router = created[0]
        router.close()
        router.close()
        assert not mp.active_children()
