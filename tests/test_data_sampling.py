"""Negative sampling and batching tests."""

import numpy as np
import pytest

from repro.data.sampling import ContextPairSampler, InteractionSampler


@pytest.fixture(scope="module")
def sampler(tiny_split):
    index = tiny_split.train.build_index()
    return InteractionSampler(tiny_split.train, index, "shelbyville",
                              num_negatives=4, rng=0), index


class TestInteractionSampler:
    def test_positives_are_city_restricted(self, tiny_split, sampler):
        smp, index = sampler
        city_pois = {index.pois.index_of(p.poi_id)
                     for p in tiny_split.train.pois_in_city("shelbyville")}
        for _, v in smp.positives:
            assert v in city_pois

    def test_negatives_never_visited(self, sampler):
        smp, _ = sampler
        for u, _v in smp.positives[:20]:
            negs = smp.sample_negatives(u, 50)
            visited = smp._visited[u]
            assert not (set(negs.tolist()) & visited)

    def test_epoch_covers_each_positive_once(self, sampler):
        smp, _ = sampler
        positives_seen = 0
        for users, pois, labels in smp.epoch(batch_size=32):
            positives_seen += int(labels.sum())
        assert positives_seen == len(smp)

    def test_negative_ratio(self, sampler):
        smp, _ = sampler
        total, positives = 0, 0
        for users, pois, labels in smp.epoch(batch_size=64):
            total += len(labels)
            positives += int(labels.sum())
        assert total == positives * 5  # 1 positive + 4 negatives

    def test_batch_shapes_consistent(self, sampler):
        smp, _ = sampler
        for users, pois, labels in smp.epoch(batch_size=16):
            assert users.shape == pois.shape == labels.shape
            assert len(users) <= 16

    def test_unknown_city_rejected(self, tiny_split):
        index = tiny_split.train.build_index()
        with pytest.raises(ValueError):
            InteractionSampler(tiny_split.train, index, "atlantis")

    def test_invalid_batch_size(self, sampler):
        smp, _ = sampler
        with pytest.raises(ValueError):
            next(smp.epoch(batch_size=0))


class TestBatchNegativeSampling:
    """The vectorized batch path behind epoch()."""

    def test_shape_and_validity(self, sampler):
        smp, _ = sampler
        users = np.asarray([u for u, _v in smp.positives[:8]])
        negs = smp.sample_negatives_batch(users, 6)
        assert negs.shape == (8, 6)
        pool = set(smp.city_poi_indices.tolist())
        for row, u in zip(negs, users):
            drawn = set(row.tolist())
            assert drawn <= pool
            assert not (drawn & smp._visited[u])

    def test_single_user_path_delegates(self, sampler):
        smp, _ = sampler
        u = smp.positives[0][0]
        negs = smp.sample_negatives(u, 12)
        assert negs.shape == (12,)
        assert not (set(negs.tolist()) & smp._visited[u])

    def test_empty_batch(self, sampler):
        smp, _ = sampler
        negs = smp.sample_negatives_batch(np.asarray([], dtype=np.int64), 4)
        assert negs.shape == (0, 4)

    def test_context_sampler_batch(self):
        edges = [(0, 1), (0, 2), (1, 3)]
        smp = ContextPairSampler(edges, num_words=10, rng=0)
        negs = smp.sample_negative_words_batch(np.asarray([0, 0, 1]), 20)
        assert negs.shape == (3, 20)
        assert not ({1, 2} & set(negs[0].tolist()))
        assert not ({1, 2} & set(negs[1].tolist()))
        assert 3 not in set(negs[2].tolist())


class TestNegativeSamplingFallback:
    def test_user_who_visited_everything_terminates(self):
        """Rejection sampling must not loop forever when no negative
        exists; the documented fallback returns a (visited) POI."""
        from repro.data.dataset import CheckinDataset
        from repro.data.records import POI, CheckinRecord
        pois = [POI(i, "c", (float(i), 0.0), ("w",)) for i in range(3)]
        checkins = [CheckinRecord(0, i, "c", float(i)) for i in range(3)]
        dataset = CheckinDataset(pois, checkins)
        index = dataset.build_index()
        sampler = InteractionSampler(dataset, index, "c", rng=0)
        user = index.users.index_of(0)
        negatives = sampler.sample_negatives(user, 5)
        assert negatives.shape == (5,)
        assert set(negatives.tolist()) <= set(
            sampler.city_poi_indices.tolist()
        )


class TestContextPairSampler:
    def test_requires_edges(self):
        with pytest.raises(ValueError):
            ContextPairSampler([], num_words=10)

    def test_negative_words_avoid_positive_context(self):
        edges = [(0, 1), (0, 2), (1, 3)]
        smp = ContextPairSampler(edges, num_words=10, rng=0)
        negs = smp.sample_negative_words(0, 100)
        assert 1 not in negs
        assert 2 not in negs

    def test_epoch_shapes(self):
        edges = [(i, i % 5) for i in range(20)]
        smp = ContextPairSampler(edges, num_words=8, num_negatives=3, rng=0)
        seen = 0
        for pois, words, negs in smp.epoch(batch_size=6):
            assert negs.shape == (len(pois), 3)
            assert pois.shape == words.shape
            seen += len(pois)
        assert seen == 20

    def test_shuffling_differs_between_epochs(self):
        edges = [(i, 0) for i in range(50)]
        smp = ContextPairSampler(edges, num_words=5, rng=0)
        first = np.concatenate([b[0] for b in smp.epoch(10)])
        second = np.concatenate([b[0] for b in smp.epoch(10)])
        assert not np.array_equal(first, second)
