"""Request-scoped tracing primitives: contexts, events, recorders."""

import pytest

from repro.obs.spans import (
    CAT_DISPATCH,
    CAT_QUEUE,
    CAT_SCORE,
    HOP_CATEGORIES,
    SpanEvent,
    SpanRecorder,
    TraceContext,
    TracingConfig,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTraceContext:
    def test_mint_is_sampled_root(self):
        ctx = TraceContext.mint()
        assert ctx.sampled
        assert ctx.parent_id == ""
        assert ctx.trace_id and ctx.span_id

    def test_mint_ids_are_unique(self):
        seen = {TraceContext.mint().trace_id for _ in range(100)}
        assert len(seen) == 100

    def test_child_keeps_trace_links_parent(self):
        root = TraceContext.mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert child.sampled == root.sampled

    def test_wire_roundtrip(self):
        ctx = TraceContext.mint().child()
        back = TraceContext.from_wire(ctx.to_wire())
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id
        assert back.flags == ctx.flags
        # parent_id is deliberately not carried: the receiver starts a
        # child span under span_id, it never re-emits the sender's span.
        assert back.parent_id == ""

    def test_from_wire_none_passthrough(self):
        assert TraceContext.from_wire(None) is None

    def test_unsampled_flag(self):
        ctx = TraceContext(trace_id="t", span_id="s", flags=0)
        assert not ctx.sampled
        assert not ctx.child().sampled


class TestSpanEvent:
    def test_dict_roundtrip(self):
        event = SpanEvent(trace_id="t1", span_id="s1", parent_id="p1",
                          name="rpc", cat=CAT_DISPATCH, ts_ms=12.3456,
                          dur_ms=7.8912, proc="router",
                          attrs={"shard": 2})
        back = SpanEvent.from_dict(event.to_dict())
        assert back.trace_id == "t1"
        assert back.parent_id == "p1"
        assert back.cat == CAT_DISPATCH
        assert back.ts_ms == pytest.approx(12.346, abs=1e-3)
        assert back.attrs == {"shard": 2}

    def test_to_dict_omits_empty_attrs(self):
        event = SpanEvent("t", "s", "", "x", CAT_QUEUE, 0.0, 0.0, "p")
        assert "attrs" not in event.to_dict()

    def test_categories_are_distinct(self):
        assert len(set(HOP_CATEGORIES)) == len(HOP_CATEGORIES)


class TestSpanRecorder:
    def test_emit_records_with_clock_timestamp(self):
        clock = FakeClock(start=2.0)
        recorder = SpanRecorder("router", clock=clock)
        ctx = TraceContext.mint()
        event = recorder.emit(ctx, "queue_wait", CAT_QUEUE, user=7)
        assert event.ts_ms == pytest.approx(2000.0)
        assert event.proc == "router"
        assert event.attrs == {"user": 7}
        assert recorder.events() == [event]

    def test_emit_none_or_unsampled_is_noop(self):
        recorder = SpanRecorder("router")
        assert recorder.emit(None, "x", CAT_QUEUE) is None
        unsampled = TraceContext("t", "s", flags=0)
        assert recorder.emit(unsampled, "x", CAT_QUEUE) is None
        assert recorder.stats()["emitted"] == 0

    def test_ring_drops_oldest_and_counts(self):
        recorder = SpanRecorder("router", capacity=3)
        ctx = TraceContext.mint()
        for i in range(5):
            recorder.emit(ctx, f"e{i}", CAT_QUEUE)
        stats = recorder.stats()
        assert stats == {"emitted": 5, "dropped": 2, "buffered": 3,
                         "capacity": 3}
        assert [e.name for e in recorder.events()] == ["e2", "e3", "e4"]

    def test_drain_empties_ring(self):
        recorder = SpanRecorder("router")
        recorder.emit(TraceContext.mint(), "x", CAT_QUEUE)
        assert len(recorder.drain()) == 1
        assert recorder.events() == []

    def test_emit_process_has_no_trace(self):
        recorder = SpanRecorder("shard-0")
        event = recorder.emit_process("attach", CAT_SCORE, shard=0)
        assert event.trace_id == ""
        assert event.attrs == {"shard": 0}

    def test_span_context_manager_times_body(self):
        clock = FakeClock(start=1.0)
        recorder = SpanRecorder("router", clock=clock)
        with recorder.span(TraceContext.mint(), "work", CAT_SCORE) as s:
            clock.advance(0.25)
        assert s.event.dur_ms == pytest.approx(250.0)
        assert s.event.ts_ms == pytest.approx(1000.0)

    def test_span_context_manager_unsampled_records_nothing(self):
        recorder = SpanRecorder("router")
        with recorder.span(None, "work", CAT_SCORE) as s:
            pass
        assert s.event is None
        assert recorder.events() == []

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder("router", capacity=0)


class TestTracingConfig:
    def test_defaults_validate(self):
        config = TracingConfig()
        assert config.shard_spans

    @pytest.mark.parametrize("kwargs", [
        {"flight_capacity": 0},
        {"slow_quantile": 0.0},
        {"slow_quantile": 1.0},
        {"recorder_capacity": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            TracingConfig(**kwargs)
