"""Terminal visualization tests."""

import pytest

from repro.eval.viz import bar_chart, comparison_chart, sparkline, sweep_chart


class TestSparkline:
    def test_monotone_series_levels(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_constant_series_mid_height(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestBarChart:
    def test_scales_to_max(self):
        chart = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart({"short": 1.0, "a-longer-label": 0.5})
        lines = chart.splitlines()
        bar_starts = [line.index("█") for line in lines]
        assert len(set(bar_starts)) == 1

    def test_zero_values_no_bar(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)


class TestSweepChart:
    def test_sorted_by_key(self):
        chart = sweep_chart({0.3: 0.2, 0.1: 0.4}, "alpha", "recall@10")
        lines = chart.splitlines()
        assert "alpha" in lines[0]
        assert lines[1].startswith("0.1")
        assert lines[2].startswith("0.3")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep_chart({}, "x", "y")


class TestComparisonChart:
    def test_renders_methods(self):
        table = {"recall": {10: 0.4}}
        chart = comparison_chart({"ItemPop": table, "ST-TransRec": table})
        assert "recall@10" in chart
        assert "ItemPop" in chart
