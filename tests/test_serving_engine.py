"""InferenceEngine tests: score parity with the model, ranking, refresh."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.core.recommend import Recommender
from repro.serving.engine import InferenceEngine


def make_model(index, *, embedding_dim=16, dropout=0.2, seed=0,
               interaction_features="concat_product"):
    """A randomly initialized model (scoring parity needs no training)."""
    config = STTransRecConfig(embedding_dim=embedding_dim, dropout=dropout,
                              seed=seed,
                              interaction_features=interaction_features)
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def world(tiny_split):
    dataset = tiny_split.train
    return dataset, dataset.build_index()


class TestScoreParity:
    """Engine scores must match ``STTransRec.score_pois_for_user``."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("features", ["concat", "concat_product"])
    def test_parity_across_random_checkpoints(self, world, tmp_path,
                                              seed, features):
        dataset, index = world
        model = make_model(index, seed=seed, dropout=0.3,
                           interaction_features=features,
                           embedding_dim=8 + 4 * seed)
        path = tmp_path / f"ckpt_{features}_{seed}.npz"
        save_checkpoint(model, index, path)
        restored, r_index = load_checkpoint(path)
        engine = InferenceEngine.from_model(restored, r_index, dataset,
                                            "shelbyville")
        users = list(range(min(6, index.num_users)))
        batched = engine.score_catalogue(users)
        for i, u in enumerate(users):
            expected = restored.score_pois_for_user(
                u, engine.catalogue_poi_indices)
            np.testing.assert_allclose(batched[i], expected, atol=1e-6)

    def test_parity_ignores_training_mode(self, world):
        """Dropout must be disabled: parity holds even for a model left
        in train mode (predict_scores itself switches to eval)."""
        dataset, index = world
        model = make_model(index, dropout=0.5)
        model.train()
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        expected = model.score_pois_for_user(0, engine.catalogue_poi_indices)
        np.testing.assert_allclose(engine.score_catalogue([0])[0],
                                   expected, atol=1e-6)

    def test_score_pois_for_user_arbitrary_subset(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        subset = np.arange(index.num_pois)[::3]
        np.testing.assert_allclose(
            engine.score_pois_for_user(1, subset),
            model.score_pois_for_user(1, subset), atol=1e-6)

    def test_float32_engine_close(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville", dtype=np.float32)
        expected = model.score_pois_for_user(0, engine.catalogue_poi_indices)
        np.testing.assert_allclose(engine.score_catalogue([0])[0],
                                   expected, atol=1e-4)

    def test_batch_rows_independent_of_batch_composition(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        alone = engine.score_catalogue([2])[0]
        in_batch = engine.score_catalogue([0, 1, 2, 3])[2]
        np.testing.assert_allclose(alone, in_batch, atol=1e-12)


class TestRanking:
    def test_top_k_matches_recommender(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        recommender = Recommender(model, index, dataset, "shelbyville")
        user_ids = sorted(dataset.users)[:5]
        user_indices = [index.users.index_of(u) for u in user_ids]
        from repro.core.recommend import visited_poi_ids
        exclude = [visited_poi_ids(dataset, u) for u in user_ids]
        ranked = engine.top_k_catalogue(user_indices, 5,
                                        exclude_poi_ids=exclude)
        for user_id, engine_top in zip(user_ids, ranked):
            expected = recommender.recommend(user_id, k=5)
            assert [p for p, _ in engine_top] == [p for p, _ in expected]
            np.testing.assert_allclose([s for _, s in engine_top],
                                       [s for _, s in expected], atol=1e-9)

    def test_exclusion_drops_pois(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        full = engine.top_k_catalogue([0], 3)[0]
        banned = {full[0][0]}
        filtered = engine.top_k_catalogue([0], 3,
                                          exclude_poi_ids=[banned])[0]
        assert full[0][0] not in [p for p, _ in filtered]

    def test_invalid_k(self, world):
        dataset, index = world
        engine = InferenceEngine.from_model(make_model(index), index,
                                            dataset, "shelbyville")
        with pytest.raises(ValueError):
            engine.top_k_catalogue([0], 0)

    def test_misaligned_exclusions_rejected(self, world):
        dataset, index = world
        engine = InferenceEngine.from_model(make_model(index), index,
                                            dataset, "shelbyville")
        with pytest.raises(ValueError):
            engine.top_k_catalogue([0, 1], 3, exclude_poi_ids=[set()])


class TestRefresh:
    def test_engine_is_frozen_until_refresh(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        before = engine.score_catalogue([0])[0]
        model.user_embeddings.weight.data[0] += 0.5
        np.testing.assert_array_equal(engine.score_catalogue([0])[0], before)
        engine.refresh_user(0)
        after = engine.score_catalogue([0])[0]
        assert not np.allclose(after, before)
        np.testing.assert_allclose(
            after,
            model.score_pois_for_user(0, engine.catalogue_poi_indices),
            atol=1e-6)

    def test_refresh_user_leaves_others_untouched(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        other_before = engine.score_catalogue([1])[0]
        model.user_embeddings.weight.data[0] += 0.5
        engine.refresh_user(0)
        np.testing.assert_array_equal(engine.score_catalogue([1])[0],
                                      other_before)

    def test_full_refresh_picks_up_all_parameters(self, world):
        dataset, index = world
        model = make_model(index)
        engine = InferenceEngine.from_model(model, index, dataset,
                                            "shelbyville")
        model.poi_bias.weight.data[:] += 1.0
        engine.refresh()
        np.testing.assert_allclose(
            engine.score_catalogue([0])[0],
            model.score_pois_for_user(0, engine.catalogue_poi_indices),
            atol=1e-6)


class TestConstruction:
    def test_empty_catalogue_rejected(self, world):
        _dataset, index = world
        with pytest.raises(ValueError):
            InferenceEngine(make_model(index), index, [])

    def test_unknown_city_rejected(self, world):
        dataset, index = world
        with pytest.raises(ValueError):
            InferenceEngine.from_model(make_model(index), index, dataset,
                                       "atlantis")

    def test_bad_dtype_rejected(self, world):
        dataset, index = world
        with pytest.raises(ValueError):
            InferenceEngine.from_model(make_model(index), index, dataset,
                                       "shelbyville", dtype=np.int32)

    def test_from_checkpoint_roundtrip(self, world, tmp_path):
        dataset, index = world
        model = make_model(index)
        path = tmp_path / "m.npz"
        save_checkpoint(model, index, path)
        engine = InferenceEngine.from_checkpoint(path, dataset,
                                                 "shelbyville")
        np.testing.assert_allclose(
            engine.score_catalogue([0])[0],
            model.score_pois_for_user(0, engine.catalogue_poi_indices),
            atol=1e-6)

    def test_stats_counters(self, world):
        dataset, index = world
        engine = InferenceEngine.from_model(make_model(index), index,
                                            dataset, "shelbyville")
        engine.score_catalogue([0, 1])
        stats = engine.stats()
        assert stats["batches_scored"] == 1
        assert stats["users_scored"] == 2
        assert stats["pairs_scored"] == 2 * engine.catalogue_size
