"""Degenerate-input robustness across the pipeline.

Failure-injection tests: tiny cities, single-check-in users, wordless
POIs, one-cell grids — the pipeline should either handle them or fail
loudly with a clear error, never corrupt results silently.
"""

import numpy as np
import pytest

from repro.core.config import STTransRecConfig
from repro.core.trainer import STTransRecTrainer
from repro.data.dataset import CheckinDataset
from repro.data.records import POI, CheckinRecord
from repro.data.split import CrossingCitySplit, make_crossing_city_split
from repro.eval.protocol import RankingEvaluator
from repro.spatial.grid import CityGrid
from repro.spatial.segmentation import segment_city


def minimal_world(words=("w0", "w1")):
    """Smallest viable crossing-city world: 2 cities, 1 crossing user."""
    pois = [
        POI(0, "src", (0.0, 0.0), words),
        POI(1, "src", (1.0, 1.0), words),
        POI(2, "tgt", (0.0, 0.0), words),
        POI(3, "tgt", (1.0, 1.0), words),
        POI(4, "tgt", (2.0, 2.0), words),
    ]
    checkins = [
        # local users
        CheckinRecord(0, 0, "src", 1.0),
        CheckinRecord(0, 1, "src", 2.0),
        CheckinRecord(1, 2, "tgt", 3.0),
        CheckinRecord(1, 3, "tgt", 4.0),
        # crossing user 2: source history + one target check-in
        CheckinRecord(2, 0, "src", 5.0),
        CheckinRecord(2, 1, "src", 6.0),
        CheckinRecord(2, 4, "tgt", 7.0),
    ]
    return CheckinDataset(pois, checkins)


def tiny_trainer_config(**overrides):
    params = dict(
        embedding_dim=4, hidden_sizes=[4], epochs=1, pretrain_epochs=1,
        mmd_batch_size=4, batch_size=4, grid_shape=(2, 2),
        segmentation_threshold=0.2, seed=0,
    )
    params.update(overrides)
    return STTransRecConfig(**params)


class TestMinimalWorld:
    def test_split_works(self):
        split = make_crossing_city_split(minimal_world(), "tgt")
        assert split.test_users == [2]
        assert split.ground_truth[2] == {4}

    def test_trainer_runs(self):
        split = make_crossing_city_split(minimal_world(), "tgt")
        trainer = STTransRecTrainer(split, tiny_trainer_config())
        result = trainer.fit()
        assert np.isfinite(result.final_loss)

    def test_evaluation_runs(self):
        split = make_crossing_city_split(minimal_world(), "tgt")
        trainer = STTransRecTrainer(split, tiny_trainer_config())
        trainer.fit()
        from repro.core.recommend import Recommender
        rec = Recommender(trainer.model, trainer.index, split.train, "tgt")
        evaluator = RankingEvaluator(split, seed=0)
        result = evaluator.evaluate(rec)
        assert result.num_users == 1


class TestWordlessPOIs:
    def test_context_graph_rejects_no_edges(self):
        dataset = minimal_world(words=())
        split = make_crossing_city_split(dataset, "tgt")
        with pytest.raises(ValueError):
            STTransRecTrainer(split, tiny_trainer_config())

    def test_no_text_variant_handles_wordless(self):
        dataset = minimal_world(words=())
        split = make_crossing_city_split(dataset, "tgt")
        trainer = STTransRecTrainer(split,
                                    tiny_trainer_config(use_text=False))
        result = trainer.fit()
        assert np.isfinite(result.final_loss)


class TestDegenerateGrids:
    def test_one_cell_grid_single_region(self):
        dataset = minimal_world()
        pois = dataset.pois_in_city("tgt")
        grid = CityGrid(pois, (1, 1))
        seg = segment_city(dataset, grid, threshold=0.5)
        assert seg.num_regions == 1
        assert set(seg.region_of_poi) == {2, 3, 4}

    def test_grid_larger_than_poi_count(self):
        dataset = minimal_world()
        pois = dataset.pois_in_city("tgt")
        grid = CityGrid(pois, (20, 20))
        seg = segment_city(dataset, grid, threshold=0.5)
        assert set(seg.region_of_poi) == {2, 3, 4}


class TestSingleCheckinUsers:
    def test_profile_mean_warm_start_defined(self):
        dataset = minimal_world()
        split = make_crossing_city_split(dataset, "tgt")
        trainer = STTransRecTrainer(split, tiny_trainer_config())
        trainer.pretrain()
        # Every user with 1+ check-ins has a finite embedding.
        assert np.isfinite(trainer.model.user_embeddings.weight.data).all()


class TestEvaluatorEdgeCases:
    def test_candidate_pool_smaller_than_100(self):
        split = make_crossing_city_split(minimal_world(), "tgt")
        evaluator = RankingEvaluator(split, num_negatives=100, seed=0)
        # target city has only 2 never-visited POIs for user 2
        candidates = evaluator._candidates[2]
        assert len(candidates) == 3  # 1 truth + 2 available negatives

    def test_all_k_beyond_pool_still_works(self):
        split = make_crossing_city_split(minimal_world(), "tgt")
        evaluator = RankingEvaluator(split, cutoffs=(50,), seed=0)

        class Any:
            def score_candidates(self, uid, cands):
                return np.arange(len(cands), dtype=float)

        result = evaluator.evaluate(Any())
        assert result.scores["recall"][50] == 1.0
