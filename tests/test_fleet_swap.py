"""Zero-downtime hot-swap: parity, generation provenance, validation."""

import multiprocessing as mp

import pytest

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.data.vocabulary import DatasetIndex
from repro.fleet.router import ShardRouter
from repro.parallel.supervisor import SupervisionConfig
from repro.resilience import QUALITY_FULL, ResilienceConfig
from repro.serving.service import RecommendationService
from repro.streaming import ModelPublisher

TARGET = "shelbyville"
K = 5


def _supervision():
    return SupervisionConfig(step_timeout=60.0, max_respawns=2,
                             respawn_backoff=0.01)


def _make_model(index, seed):
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       STTransRecConfig(embedding_dim=8, seed=seed))
    model.eval()
    return model


@pytest.fixture(scope="module")
def world(tiny_dataset):
    dataset, _truth = tiny_dataset
    index = dataset.build_index()
    return _make_model(index, 3), _make_model(index, 4), index, dataset


@pytest.fixture(scope="module")
def references(world):
    """Single-process oracle answers for both generations' parameters."""
    model_a, model_b, index, dataset = world
    users = sorted(dataset.users)
    out = []
    for model in (model_a, model_b):
        with RecommendationService(model, index, dataset, TARGET,
                                   cache_size=0,
                                   use_batcher=False) as service:
            out.append(service.recommend_many(users, k=K))
    return users, out[0], out[1]


class TestSwapParity:
    def test_swap_is_bit_exact_and_tagged(self, world, references):
        model_a, model_b, index, dataset = world
        users, expected_a, expected_b = references
        with ShardRouter(model_a, index, dataset, TARGET, num_shards=2,
                         supervision=_supervision()) as router:
            before, gens = router.recommend_many(users, k=K,
                                                 return_generations=True)
            assert before == expected_a
            assert set(gens.values()) == {0}
            assert router.generation == 0

            summary = router.swap(model_b)

            after, gens = router.recommend_many(users, k=K,
                                                return_generations=True)
            # Zero dropped: every user answered, bit-exact against a
            # single-process engine on the new parameters, and every
            # response names the generation that scored it.
            assert set(after) == set(users)
            assert after == expected_b
            assert set(gens.values()) == {1}

            assert summary["generation"] == 1
            assert summary["previous_generation"] == 0
            assert summary["acked_shards"] == summary["live_shards"]
            assert len(summary["acked_shards"]) == 2
            stats = router.stats()
            assert stats["generation"] == 1
            assert stats["swaps"] == 1
        assert mp.active_children() == []

    def test_back_to_back_swaps_advance_monotonically(self, world,
                                                      references):
        model_a, model_b, index, dataset = world
        users, expected_a, expected_b = references
        with ShardRouter(model_a, index, dataset, TARGET, num_shards=2,
                         supervision=_supervision()) as router:
            assert router.swap(model_b)["generation"] == 1
            assert router.swap(model_a)["generation"] == 2
            assert router.recommend_many(users, k=K) == expected_a
            assert router.stats()["swaps"] == 2


class TestSwapValidation:
    def test_stale_generation_rejected(self, world):
        model_a, model_b, index, dataset = world
        with ShardRouter(model_a, index, dataset, TARGET, num_shards=1,
                         supervision=_supervision()) as router:
            with pytest.raises(ValueError, match="must advance"):
                router.swap(model_b, generation=0)
            # The failed swap left the fleet untouched.
            assert router.generation == 0
            assert router.stats()["swaps"] == 0

    def test_vocabulary_change_rejected(self, world):
        model_a, model_b, index, dataset = world
        shrunk = DatasetIndex(list(index.users.keys())[:-1],
                              index.pois.keys(), index.words.keys())
        with ShardRouter(model_a, index, dataset, TARGET, num_shards=1,
                         supervision=_supervision()) as router:
            with pytest.raises(ValueError, match="vocabulary"):
                router.swap(model_b, index=shrunk)

    def test_closed_router_rejects_swap(self, world):
        model_a, model_b, index, dataset = world
        router = ShardRouter(model_a, index, dataset, TARGET,
                             num_shards=1, supervision=_supervision())
        router.close()
        with pytest.raises(RuntimeError):
            router.swap(model_b)


class TestCacheInvalidation:
    def test_swap_invalidates_resilient_cache(self, world, references):
        model_a, model_b, index, dataset = world
        users, _expected_a, expected_b = references
        resilience = ResilienceConfig(deadline_ms=10_000.0,
                                      hop_timeout_ms=5_000.0,
                                      hedge_after_ms=2_000.0,
                                      poll_interval_ms=5.0)
        with ShardRouter(model_a, index, dataset, TARGET, num_shards=2,
                         supervision=_supervision(),
                         resilience=resilience) as router:
            router.recommend_resilient(users, k=K)
            assert len(router._res_cache) > 0

            router.swap(model_b)

            # Stale generation-0 rankings must not survive the swap…
            assert len(router._res_cache) == 0
            # …and fresh answers come from the new parameters.
            got = router.recommend_resilient(users, k=K)
            for user in users:
                assert got[user].quality == QUALITY_FULL
                assert got[user].items == expected_b[user]


class TestSwapFromCheckpoint:
    def test_published_generations_drive_the_fleet(self, world, references,
                                                   tmp_path):
        model_a, model_b, index, dataset = world
        users, _expected_a, expected_b = references
        publisher = ModelPublisher(tmp_path)
        assert publisher.publish(model_a, index) == 0
        assert publisher.publish(model_b, index) == 1
        with ShardRouter(model_a, index, dataset, TARGET, num_shards=2,
                         supervision=_supervision()) as router:
            summary = router.swap_from_checkpoint(tmp_path / "gen-1.npz")
            assert summary["generation"] == 1
            assert router.recommend_many(users, k=K) == expected_b
            # Re-swapping the stale generation-0 publication fails
            # loudly instead of silently rolling the fleet back.
            with pytest.raises(ValueError, match="must advance"):
                router.swap_from_checkpoint(tmp_path / "gen-0.npz")
            assert router.generation == 1
