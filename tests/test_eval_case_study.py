"""Table 3 case study tests."""

import pytest

from repro.core.recommend import Recommender
from repro.core.trainer import STTransRecTrainer
from repro.eval.case_study import build_case_study

from tests.test_core_trainer import fast_config


@pytest.fixture(scope="module")
def recommenders(tiny_split):
    full = STTransRecTrainer(tiny_split, fast_config())
    full.fit()
    no_text = STTransRecTrainer(tiny_split, fast_config(use_text=False))
    no_text.fit()
    return {
        "ST-TransRec": Recommender(full.model, full.index,
                                   tiny_split.train, "shelbyville"),
        "ST-TransRec-2": Recommender(no_text.model, no_text.index,
                                     tiny_split.train, "shelbyville"),
    }


class TestCaseStudy:
    def test_default_user_has_largest_truth(self, tiny_split, recommenders):
        study = build_case_study(tiny_split, recommenders)
        best = max(tiny_split.test_users,
                   key=lambda u: len(tiny_split.ground_truth.get(u, ())))
        assert study.user_id == best

    def test_rank_lists_per_model(self, tiny_split, recommenders):
        study = build_case_study(tiny_split, recommenders, top_k=3)
        assert set(study.rank_lists) == set(recommenders)
        for ranked in study.rank_lists.values():
            assert len(ranked) == 3

    def test_ground_truth_flags_consistent(self, tiny_split, recommenders):
        study = build_case_study(tiny_split, recommenders)
        truth = tiny_split.ground_truth[study.user_id]
        for ranked in study.rank_lists.values():
            for row in ranked:
                assert row.is_ground_truth == (row.poi_id in truth)

    def test_top_words_non_empty(self, tiny_split, recommenders):
        study = build_case_study(tiny_split, recommenders)
        assert study.top_words

    def test_format_renders_table(self, tiny_split, recommenders):
        study = build_case_study(tiny_split, recommenders)
        text = study.format()
        assert f"user #{study.user_id}" in text
        assert "ST-TransRec-2" in text

    def test_explicit_user(self, tiny_split, recommenders):
        user = tiny_split.test_users[0]
        study = build_case_study(tiny_split, recommenders, user_id=user)
        assert study.user_id == user

    def test_requires_recommenders(self, tiny_split):
        with pytest.raises(ValueError):
            build_case_study(tiny_split, {})
