"""Synthetic generator tests: the four controlled dataset properties."""

import dataclasses

import numpy as np
import pytest

from repro.data.synthetic import (
    CitySpec,
    SyntheticConfig,
    foursquare_like,
    generate_dataset,
    yelp_like,
)

from tests.conftest import tiny_config


class TestConfigValidation:
    def test_duplicate_city_names_rejected(self):
        spec = CitySpec("x")
        with pytest.raises(ValueError):
            SyntheticConfig(cities=[spec, CitySpec("x")], target_city="x")

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(cities=[CitySpec("a"), CitySpec("b")],
                            target_city="zzz")

    def test_single_city_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(cities=[CitySpec("a")], target_city="a")

    def test_too_many_regions_rejected(self):
        with pytest.raises(ValueError):
            CitySpec("a", grid_shape=(2, 2), num_regions=5)

    def test_source_cities_property(self):
        cfg = tiny_config()
        assert cfg.source_cities == ["springfield"]


class TestGeneration:
    def test_deterministic_per_seed(self):
        ds1, _ = generate_dataset(tiny_config(seed=5))
        ds2, _ = generate_dataset(tiny_config(seed=5))
        assert ds1.num_checkins() == ds2.num_checkins()
        assert [r.poi_id for r in ds1.checkins[:50]] == \
               [r.poi_id for r in ds2.checkins[:50]]

    def test_different_seeds_differ(self):
        ds1, _ = generate_dataset(tiny_config(seed=5))
        ds2, _ = generate_dataset(tiny_config(seed=6))
        assert [r.poi_id for r in ds1.checkins[:100]] != \
               [r.poi_id for r in ds2.checkins[:100]]

    def test_poi_counts_match_specs(self, tiny_dataset):
        dataset, _ = tiny_dataset
        assert len(dataset.pois_in_city("springfield")) == 40
        assert len(dataset.pois_in_city("shelbyville")) == 36

    def test_city_dependent_words_do_not_cross_cities(self, tiny_dataset):
        dataset, _ = tiny_dataset
        for poi in dataset.pois.values():
            for word in poi.words:
                if "_topic" in word:  # city-specific token
                    assert word.startswith(poi.city)

    def test_shared_words_appear_in_both_cities(self, tiny_dataset):
        dataset, _ = tiny_dataset
        shared_by_city = {}
        for poi in dataset.pois.values():
            shared = {w for w in poi.words if w.startswith("topic")}
            shared_by_city.setdefault(poi.city, set()).update(shared)
        overlap = shared_by_city["springfield"] & shared_by_city["shelbyville"]
        assert len(overlap) > 0

    def test_crossing_users_visit_both_cities(self, tiny_dataset, tiny_truth):
        dataset, _ = tiny_dataset
        for user in tiny_truth.crossing_user_ids:
            cities = dataset.cities_of_user(user)
            assert "shelbyville" in cities
            assert "springfield" in cities

    def test_crossing_checkins_sparse(self, tiny_dataset, tiny_truth):
        dataset, _ = tiny_dataset
        for user in tiny_truth.crossing_user_ids:
            profile = dataset.user_profile(user)
            target = [r for r in profile if r.city == "shelbyville"]
            assert len(target) < len(profile) / 2

    def test_preferences_are_distributions(self, tiny_truth):
        for pref in tiny_truth.user_preferences.values():
            assert pref.shape == (4,)
            np.testing.assert_allclose(pref.sum(), 1.0)
            assert (pref >= 0).all()

    def test_crowd_preferences_deterministic_peak(self, tiny_truth):
        # Signature topic = city index; target shelbyville is city 1.
        crowd = tiny_truth.city_crowd_preferences["shelbyville"]
        assert crowd.argmax() == 1
        np.testing.assert_allclose(crowd.sum(), 1.0)

    def test_region_weights_sum_to_one(self, tiny_truth):
        for weights in tiny_truth.region_weights.values():
            np.testing.assert_allclose(weights.sum(), 1.0)

    def test_imbalanced_region_checkins(self, tiny_dataset, tiny_truth):
        """Accessibility skew concentrates check-ins in few regions."""
        dataset, _ = tiny_dataset
        counts = {}
        for record in dataset.checkins_in_city("shelbyville"):
            region = tiny_truth.poi_regions[record.poi_id]
            counts[region] = counts.get(region, 0) + 1
        values = sorted(counts.values(), reverse=True)
        assert values[0] > 1.5 * values[-1]


class TestPresets:
    @pytest.mark.parametrize("builder", [foursquare_like, yelp_like])
    def test_presets_validate_and_scale(self, builder):
        small = builder(scale=0.2)
        large = builder(scale=1.0)
        assert sum(c.num_pois for c in small.cities) < \
               sum(c.num_pois for c in large.cities)

    def test_foursquare_target_is_la(self):
        assert foursquare_like().target_city == "los_angeles"

    def test_yelp_target_is_vegas(self):
        assert yelp_like().target_city == "las_vegas"

    def test_preset_generation_has_crossing_users(self):
        ds, truth = generate_dataset(foursquare_like(scale=0.2))
        assert len(truth.crossing_user_ids) > 0
