"""Gradient-averaging correctness of the data-parallel trainer.

Synchronous data parallelism must apply exactly the mean of the worker
gradients — this is what makes W-worker training mathematically
equivalent to large-batch single-process training.  These tests verify
the all-reduce arithmetic directly on the master, without IPC.
"""

import numpy as np

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.nn.losses import bce_with_logits


def small_model(seed=0):
    config = STTransRecConfig(embedding_dim=4, hidden_sizes=[4], seed=seed)
    return STTransRec(num_users=5, num_pois=6, num_words=4, config=config)


def batch_gradients(model, users, pois, labels):
    """Gradient dict for one batch, leaving the model unchanged."""
    model.zero_grad()
    loss = bce_with_logits(model.interaction_logits(users, pois), labels)
    loss.backward()
    return {name: p.grad.copy() if p.grad is not None
            else np.zeros_like(p.data)
            for name, p in model.named_parameters()}


class TestGradientAveraging:
    def test_mean_of_worker_grads_equals_fullbatch_grad(self):
        """mean(grad(batch_1), grad(batch_2)) == grad(batch_1 ∪ batch_2)
        when the batches are equal-sized (BCE means per batch)."""
        model = small_model()
        model.eval()  # disable dropout for exact comparison
        rng = np.random.default_rng(0)
        users = rng.integers(0, 5, size=8)
        pois = rng.integers(0, 6, size=8)
        labels = rng.integers(0, 2, size=8).astype(float)

        g_half1 = batch_gradients(model, users[:4], pois[:4], labels[:4])
        g_half2 = batch_gradients(model, users[4:], pois[4:], labels[4:])
        g_full = batch_gradients(model, users, pois, labels)

        for name in g_full:
            averaged = (g_half1[name] + g_half2[name]) / 2.0
            np.testing.assert_allclose(averaged, g_full[name], atol=1e-10)

    def test_replicas_from_same_state_agree(self):
        """Two replicas loaded from one state dict produce identical
        gradients on identical batches."""
        a, b = small_model(seed=0), small_model(seed=1)
        b.load_state_dict(a.state_dict())
        a.eval()
        b.eval()
        users = np.array([0, 1, 2])
        pois = np.array([3, 4, 5])
        labels = np.array([1.0, 0.0, 1.0])
        g_a = batch_gradients(a, users, pois, labels)
        g_b = batch_gradients(b, users, pois, labels)
        for name in g_a:
            np.testing.assert_allclose(g_a[name], g_b[name], atol=1e-12)
