"""Baseline method tests: interface compliance and model-specific logic."""

import numpy as np
import pytest

from repro.baselines import (
    CRCF,
    CTLM,
    LCE,
    PACE,
    PRUIDT,
    SHCDL,
    STLDA,
    ItemPop,
    METHOD_NAMES,
    MethodProfile,
    STTransRecMethod,
    make_method,
)
from repro.core.config import STTransRecConfig


def fast_profile():
    return MethodProfile(embedding_dim=8, epochs=2, pretrain_epochs=2,
                         num_topics=4, mf_rank=4, seed=0)


def fast_method(name):
    """Small-budget instance of a method for the tiny dataset."""
    p = fast_profile()
    overrides = {
        "ST-LDA": lambda: STLDA(num_topics=4, iterations=8, seed=0),
        "CTLM": lambda: CTLM(num_topics=4, iterations=8, seed=0),
        "SH-CDL": lambda: SHCDL(latent_dim=8, ae_epochs=4, pref_epochs=2,
                                seed=0),
        "PACE": lambda: PACE(embedding_dim=8, hidden_sizes=[8], epochs=2,
                             seed=0),
        "ST-TransRec": lambda: STTransRecMethod(STTransRecConfig(
            embedding_dim=8, hidden_sizes=[8], epochs=2, pretrain_epochs=2,
            mmd_batch_size=16, grid_shape=(4, 4),
            segmentation_threshold=0.2, seed=0)),
    }
    if name in overrides:
        return overrides[name]()
    return make_method(name, p)


@pytest.fixture(scope="module", params=METHOD_NAMES)
def fitted_method(request, tiny_split):
    return fast_method(request.param).fit(tiny_split)


class TestInterfaceCompliance:
    """Every method honours the shared recommender contract."""

    def test_scores_aligned_with_candidates(self, fitted_method, tiny_split):
        user = tiny_split.test_users[0]
        candidates = [p.poi_id
                      for p in tiny_split.train.pois_in_city("shelbyville")][:20]
        scores = fitted_method.score_candidates(user, candidates)
        assert scores.shape == (len(candidates),)
        assert np.isfinite(scores).all()

    def test_unknown_user_raises_keyerror(self, fitted_method):
        with pytest.raises(KeyError):
            fitted_method.score_candidates(10**9, [0])

    def test_fit_returns_self(self, tiny_split):
        method = fast_method("ItemPop")
        assert method.fit(tiny_split) is method

    def test_score_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            fast_method("ItemPop").score_candidates(0, [0])


class TestItemPop:
    def test_ranks_by_visit_count(self, tiny_split):
        method = ItemPop().fit(tiny_split)
        counts = tiny_split.train.visit_counts()
        pois = sorted(counts, key=counts.get)[-5:]
        user = tiny_split.test_users[0]
        scores = method.score_candidates(user, pois)
        assert list(scores) == sorted(scores)

    def test_scores_user_independent(self, tiny_split):
        method = ItemPop().fit(tiny_split)
        users = tiny_split.test_users[:2]
        pois = list(tiny_split.train.pois)[:10]
        a = method.score_candidates(users[0], pois)
        b = method.score_candidates(users[1], pois)
        np.testing.assert_array_equal(a, b)


class TestLCE:
    def test_factors_non_negative(self, tiny_split):
        method = LCE(rank=4, iterations=20, seed=0).fit(tiny_split)
        assert (method._user_factors >= 0).all()
        assert (method._item_factors >= 0).all()


class TestCRCF:
    def test_location_prior_decays(self, tiny_split):
        method = CRCF(decay_scale=1.0).fit(tiny_split)
        user = tiny_split.test_users[0]
        pois = tiny_split.train.pois_in_city("shelbyville")
        far = max(pois, key=lambda p: np.linalg.norm(
            np.array(p.location) - method._anchor))
        near = min(pois, key=lambda p: np.linalg.norm(
            np.array(p.location) - method._anchor))
        # With identical content the nearer POI scores at least as high;
        # verify through the prior directly.
        d_far = np.linalg.norm(np.array(far.location) - method._anchor)
        d_near = np.linalg.norm(np.array(near.location) - method._anchor)
        assert np.exp(-d_near) >= np.exp(-d_far)


class TestTopicModels:
    def test_stlda_theta_is_distribution(self, tiny_split):
        method = STLDA(num_topics=4, iterations=8, seed=0).fit(tiny_split)
        theta = method._theta
        np.testing.assert_allclose(theta.sum(axis=1), 1.0)
        assert (theta >= 0).all()

    def test_ctlm_uses_only_common_vocabulary(self, tiny_split):
        method = CTLM(num_topics=4, iterations=8, seed=0).fit(tiny_split)
        for word in method._common_vocab:
            # city-specific synthetic words never enter the common vocab
            assert "_topic" not in word

    def test_ctlm_requires_shared_words(self, tiny_split):
        # A dataset whose cities share no words cannot fit CTLM; build
        # one by renaming every word per city.
        from repro.data.dataset import CheckinDataset
        from repro.data.records import POI
        import dataclasses as dc
        pois = []
        for poi in tiny_split.train.pois.values():
            pois.append(POI(poi.poi_id, poi.city, poi.location,
                            tuple(f"{poi.city}::{w}" for w in poi.words),
                            poi.topic))
        isolated = CheckinDataset(pois, tiny_split.train.checkins)
        split = dc.replace(tiny_split, train=isolated)
        with pytest.raises(ValueError):
            CTLM(num_topics=4, iterations=4, seed=0).fit(split)


class TestDeepBaselines:
    def test_shcdl_latents_shape(self, tiny_split):
        method = SHCDL(latent_dim=8, ae_epochs=3, pref_epochs=1,
                       seed=0).fit(tiny_split)
        assert method._poi_latents.shape[1] == 8

    def test_pace_spatial_edges_within_city(self, tiny_split):
        method = PACE(embedding_dim=8, hidden_sizes=[8], epochs=1, seed=0)
        method.index = tiny_split.train.build_index()
        edges = method._spatial_edges(tiny_split)
        cities = {}
        for poi_id, poi in tiny_split.train.pois.items():
            cities[method.index.pois.index_of(poi_id)] = poi.city
        for a, b in edges:
            assert cities[a] == cities[b]

    def test_st_transrec_variant_names(self):
        assert STTransRecMethod(variant="ST-TransRec-2").name == \
            "ST-TransRec-2"
        assert STTransRecMethod().name == "ST-TransRec"


class TestRegistry:
    def test_all_method_names_buildable(self):
        for name in METHOD_NAMES:
            method = make_method(name, fast_profile())
            assert method.name == name

    def test_variant_names_buildable(self):
        method = make_method("ST-TransRec-3", fast_profile())
        assert method.name == "ST-TransRec-3"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_method("DeepFM")

    def test_profile_maps_to_config(self):
        profile = MethodProfile(embedding_dim=16, dropout=0.3, seed=9)
        config = profile.st_transrec_config()
        assert config.embedding_dim == 16
        assert config.dropout == 0.3
        assert config.seed == 9
