"""Autograd engine tests: values, gradients, and graph mechanics."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, softplus, stable_sigmoid


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f() w.r.t. array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def assert_grad_matches(build, *tensors, tol=1e-5):
    """Backward gradient of ``build()`` must match numerical gradient."""
    for t in tensors:
        t.zero_grad()
    loss = build()
    loss.backward()
    for t in tensors:
        expected = numerical_grad(lambda: build().item(), t.data)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, expected, atol=tol, rtol=tol)


class TestConstruction:
    def test_int_data_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.data.dtype, np.floating)

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert b.is_leaf
        assert not b.requires_grad

    def test_zeros_ones_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0


class TestArithmeticValues:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones(3))
        np.testing.assert_array_equal((a + b).data, np.full((2, 3), 2.0))

    def test_radd_scalar(self):
        t = 1.0 + Tensor([1.0, 2.0])
        np.testing.assert_array_equal(t.data, [2.0, 3.0])

    def test_sub_and_rsub(self):
        a = Tensor([3.0])
        np.testing.assert_array_equal((a - 1.0).data, [2.0])
        np.testing.assert_array_equal((5.0 - a).data, [2.0])

    def test_mul_div(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_array_equal((a * 3).data, [6.0, 12.0])
        np.testing.assert_array_equal((a / 2).data, [1.0, 2.0])
        np.testing.assert_array_equal((8.0 / a).data, [4.0, 2.0])

    def test_pow_scalar_only(self):
        a = Tensor([2.0])
        np.testing.assert_array_equal((a ** 3).data, [8.0])
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_matmul_matrix_matrix(self):
        a = Tensor(np.arange(6).reshape(2, 3))
        b = Tensor(np.arange(12).reshape(3, 4))
        np.testing.assert_array_equal((a @ b).data, a.data @ b.data)

    def test_matmul_matrix_vector(self):
        a = Tensor(np.arange(6).reshape(2, 3))
        v = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal((a @ v).data, a.data @ v.data)


class TestGradients:
    def test_add_mul_chain(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: ((a + b) * a).sum(), a, b)

    def test_broadcast_add_grad(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        assert_grad_matches(lambda: ((a + b) ** 2).sum(), a, b)

    def test_div_grad(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(5,)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(5,)) + 3.0, requires_grad=True)
        assert_grad_matches(lambda: (a / b).sum(), a, b)

    def test_matmul_grad(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        assert_grad_matches(lambda: (a @ b).sum(), a, b)

    def test_matvec_grad(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        v = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert_grad_matches(lambda: (a @ v).sum(), a, v)

    @pytest.mark.parametrize("op", ["exp", "log", "tanh", "sigmoid",
                                    "log_sigmoid", "relu", "abs", "sqrt"])
    def test_unary_grads(self, op):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(6,))
        if op in ("log", "sqrt"):
            data = np.abs(data) + 0.5
        if op in ("relu", "abs"):
            # keep away from the kink where the derivative jumps
            data = data + np.sign(data) * 0.2
        a = Tensor(data, requires_grad=True)
        assert_grad_matches(lambda: getattr(a, op)().sum(), a)

    def test_clip_grad_masks_outside(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_sum_axis_keepdims_grad(self):
        rng = np.random.default_rng(6)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(
            lambda: (a.sum(axis=0, keepdims=True) ** 2).sum(), a
        )

    def test_mean_grad(self):
        rng = np.random.default_rng(7)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.mean(axis=1) ** 2).sum(), a)

    def test_max_grad_splits_ties(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_reshape_transpose_grad(self):
        rng = np.random.default_rng(8)
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        assert_grad_matches(
            lambda: (a.reshape(3, 4).transpose() ** 2).sum(), a
        )

    def test_getitem_grad_scatter(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        (a[np.array([0, 0, 2])] ** 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_gather_rows_grad_accumulates_repeats(self):
        a = Tensor(np.ones((4, 2)), requires_grad=True)
        a.gather_rows(np.array([1, 1, 3])).sum().backward()
        np.testing.assert_array_equal(
            a.grad, [[0, 0], [2, 2], [0, 0], [1, 1]]
        )

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = a*a + a  (a used twice): dy/da = 2a + 1
        a = Tensor(np.array([3.0]), requires_grad=True)
        ((a * a) + a).backward()
        np.testing.assert_array_equal(a.grad, [7.0])

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).backward()
        (a * 2).backward()
        np.testing.assert_array_equal(a.grad, [4.0])
        a.zero_grad()
        assert a.grad is None


class TestShapeOpsExtra:
    def test_transpose_explicit_perm_grad(self):
        rng = np.random.default_rng(11)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert_grad_matches(
            lambda: (a.transpose(2, 0, 1) ** 2).sum(), a
        )

    def test_getitem_slice_grad(self):
        a = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        (a[1:, :2] * 2).sum().backward()
        expected = np.zeros((3, 4))
        expected[1:, :2] = 2.0
        np.testing.assert_array_equal(a.grad, expected)

    def test_mean_axis_tuple(self):
        rng = np.random.default_rng(12)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(0, 2))
        assert out.shape == (3,)
        np.testing.assert_allclose(out.data, a.data.mean(axis=(0, 2)))
        assert_grad_matches(lambda: (a.mean(axis=(0, 2)) ** 2).sum(), a)

    def test_sum_negative_axis_grad(self):
        rng = np.random.default_rng(13)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.sum(axis=-1) ** 2).sum(), a)

    def test_flatten_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a.flatten() * np.arange(6)).sum().backward()
        np.testing.assert_array_equal(a.grad,
                                      np.arange(6.0).reshape(2, 3))

    def test_max_keepdims(self):
        a = Tensor(np.array([[1.0, 3.0], [2.0, 0.0]]))
        out = a.max(axis=1, keepdims=True)
        assert out.shape == (2, 1)


class TestBackwardErrors:
    def test_backward_without_grad_flag(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_seed(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()
        (a * 2).backward(np.ones(3))
        np.testing.assert_array_equal(a.grad, [2.0, 2.0, 2.0])

    def test_deep_chain_does_not_recurse(self):
        # 3000-op chain would blow the recursion limit if backward were
        # recursive.
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        np.testing.assert_array_equal(a.grad, [1.0])


class TestStableHelpers:
    def test_stable_sigmoid_extremes(self):
        out = stable_sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out))

    def test_softplus_extremes(self):
        out = softplus(np.array([-1000.0, 0.0, 1000.0]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], np.log(2.0))
        np.testing.assert_allclose(out[2], 1000.0)

    def test_log_sigmoid_no_overflow(self):
        t = Tensor(np.array([-800.0, 800.0]))
        out = t.log_sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], 0.0, atol=1e-12)
