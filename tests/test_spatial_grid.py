"""CityGrid geometry tests."""

import pytest

from repro.data.records import POI
from repro.spatial.grid import BoundingBox, CityGrid


def grid_world():
    pois = [
        POI(0, "a", (0.0, 0.0), ()),
        POI(1, "a", (10.0, 10.0), ()),
        POI(2, "a", (5.0, 5.0), ()),
        POI(3, "a", (0.1, 9.9), ()),
    ]
    return CityGrid(pois, shape=(4, 4))


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of_points([(0, 0), (2, 3)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 2, 3)

    def test_degenerate_padded(self):
        box = BoundingBox.of_points([(1, 1), (1, 1)])
        assert box.max_x > box.min_x
        assert box.max_y > box.min_y

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points([])

    def test_invalid_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)


class TestCityGrid:
    def test_requires_pois(self):
        with pytest.raises(ValueError):
            CityGrid([], (2, 2))

    def test_rejects_mixed_cities(self):
        pois = [POI(0, "a", (0, 0), ()), POI(1, "b", (1, 1), ())]
        with pytest.raises(ValueError):
            CityGrid(pois, (2, 2))

    def test_corner_cells(self):
        grid = grid_world()
        assert grid.cell_of_poi(0) == (0, 0)
        assert grid.cell_of_poi(1) == (3, 3)

    def test_boundary_location_clamped(self):
        grid = grid_world()
        cell = grid.cell_of_location((10.0, 10.0))
        assert cell == (3, 3)
        cell = grid.cell_of_location((-99.0, 99.0))
        assert cell == (0, 3)

    def test_pois_in_cell(self):
        grid = grid_world()
        assert [p.poi_id for p in grid.pois_in_cell((0, 0))] == [0]
        assert grid.pois_in_cell((1, 0)) == []

    def test_occupied_cells_sorted(self):
        cells = grid_world().occupied_cells()
        assert cells == sorted(cells)
        assert len(cells) == 4

    def test_neighbors_interior_and_corner(self):
        grid = grid_world()
        assert len(grid.neighbors((1, 1))) == 4
        assert len(grid.neighbors((0, 0))) == 2

    def test_all_cells_count(self):
        grid = grid_world()
        assert len(list(grid.all_cells())) == grid.num_cells == 16
