"""Real-format loader tests against synthetic fixture files."""

import json

import numpy as np
import pytest

from repro.data.loaders import (
    FoursquareColumns,
    load_foursquare_checkins,
    load_yelp_dataset,
)


@pytest.fixture()
def foursquare_file(tmp_path):
    lines = [
        # user, venue, lat, lon, category, city, timestamp
        "u1\tv1\t34.05\t-118.24\tArt Museum\tLos Angeles\t100",
        "u1\tv2\t34.06\t-118.25\tCoffee Shop\tLos Angeles\t101",
        "u1\tv3\t40.71\t-74.00\tPark\tNew York\t102",
        "u2\tv1\t34.05\t-118.24\tArt Museum\tLos Angeles\t103",
        "u2\tv2\t34.06\t-118.25\tCoffee Shop\tLos Angeles\t104",
        "corrupted line without tabs",
        "u3\tv3\t40.71\tNOT_A_FLOAT\tPark\tNew York\t105",
    ]
    path = tmp_path / "checkins.tsv"
    path.write_text("\n".join(lines) + "\n")
    return path


class TestFoursquareLoader:
    def test_parses_valid_lines(self, foursquare_file):
        dataset = load_foursquare_checkins(foursquare_file)
        assert dataset.num_checkins() == 5
        assert len(dataset.pois) == 3
        assert sorted(dataset.cities) == ["los_angeles", "new_york"]

    def test_malformed_lines_skipped(self, foursquare_file):
        dataset = load_foursquare_checkins(foursquare_file)
        # u3's malformed line contributes nothing.
        assert len(dataset.users) == 2

    def test_category_words_normalized(self, foursquare_file):
        dataset = load_foursquare_checkins(foursquare_file)
        museum = next(p for p in dataset.pois.values()
                      if "museum" in p.words)
        assert "art" in museum.words

    def test_city_filter(self, foursquare_file):
        dataset = load_foursquare_checkins(
            foursquare_file, cities=["Los Angeles"])
        assert dataset.cities == ["los_angeles"]

    def test_min_checkins_filter(self, foursquare_file):
        dataset = load_foursquare_checkins(foursquare_file,
                                           min_user_checkins=3)
        assert len(dataset.users) == 1  # only u1 has 3 events

    def test_locations_projected_to_local_km(self, foursquare_file):
        dataset = load_foursquare_checkins(foursquare_file)
        # LA venues ~1.2 km apart (0.01° lat), local coords near origin.
        la = dataset.pois_in_city("los_angeles")
        coords = np.array([p.location for p in la])
        assert np.abs(coords).max() < 10.0
        spread = np.linalg.norm(coords[0] - coords[1])
        assert 0.5 < spread < 3.0

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "alt.tsv"
        # timestamp first, then user, venue, lat, lon, category, city
        path.write_text("7\tu1\tv1\t10.0\t10.0\tBar\tTown\n"
                        "8\tu1\tv1\t10.0\t10.0\tBar\tTown\n")
        columns = FoursquareColumns(user=1, venue=2, latitude=3,
                                    longitude=4, category=5, city=6,
                                    timestamp=0)
        dataset = load_foursquare_checkins(path, columns=columns)
        assert dataset.num_checkins() == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_foursquare_checkins(path)


@pytest.fixture()
def yelp_files(tmp_path):
    businesses = [
        {"business_id": "b1", "city": "Phoenix", "latitude": 33.45,
         "longitude": -112.07, "categories": "Mexican, Restaurants"},
        {"business_id": "b2", "city": "Las Vegas", "latitude": 36.17,
         "longitude": -115.14, "categories": "Casinos, Nightlife"},
        {"business_id": "b3", "city": "Toronto", "latitude": 43.65,
         "longitude": -79.38, "categories": "Coffee"},
    ]
    reviews = (
        [{"user_id": "alice", "business_id": "b1",
          "date": "2018-01-0%d" % (i + 1)} for i in range(3)]
        + [{"user_id": "alice", "business_id": "b2",
            "date": "2018-02-01"}]
        + [{"user_id": "bob", "business_id": "b2", "date": "2018-03-01"}]
        + [{"user_id": "carol", "business_id": "b3",
            "date": "2018-04-01"}]
    )
    business_path = tmp_path / "business.json"
    review_path = tmp_path / "review.json"
    business_path.write_text(
        "\n".join(json.dumps(b) for b in businesses) + "\n")
    review_path.write_text(
        "\n".join(json.dumps(r) for r in reviews) + "\n")
    return business_path, review_path


class TestYelpLoader:
    def test_city_restriction(self, yelp_files):
        business, review = yelp_files
        dataset = load_yelp_dataset(business, review,
                                    cities=["Phoenix", "Las Vegas"],
                                    min_user_reviews=1)
        assert sorted(dataset.cities) == ["las_vegas", "phoenix"]
        # Toronto review dropped with its business.
        assert dataset.num_checkins() == 5

    def test_min_reviews_matches_paper_rule(self, yelp_files):
        business, review = yelp_files
        dataset = load_yelp_dataset(business, review,
                                    cities=["Phoenix", "Las Vegas"],
                                    min_user_reviews=2)
        # Only alice has >= 2 kept reviews.
        assert len(dataset.users) == 1

    def test_categories_become_words(self, yelp_files):
        business, review = yelp_files
        dataset = load_yelp_dataset(business, review,
                                    cities=["Las Vegas"],
                                    min_user_reviews=1)
        vegas = dataset.pois_in_city("las_vegas")
        assert "casinos" in vegas[0].words

    def test_dates_order_checkins(self, yelp_files):
        business, review = yelp_files
        dataset = load_yelp_dataset(business, review,
                                    cities=["Phoenix", "Las Vegas"],
                                    min_user_reviews=1)
        alice = next(iter(sorted(dataset.users)))
        times = [r.timestamp for r in dataset.user_profile(alice)]
        assert times == sorted(times)

    def test_requires_cities(self, yelp_files):
        business, review = yelp_files
        with pytest.raises(ValueError):
            load_yelp_dataset(business, review, cities=[])

    def test_no_matching_city_rejected(self, yelp_files):
        business, review = yelp_files
        with pytest.raises(ValueError):
            load_yelp_dataset(business, review, cities=["Atlantis"],
                              min_user_reviews=1)
