"""Weight initializer tests."""

import numpy as np
import pytest

from repro.nn import init


class TestNormal:
    def test_scale(self):
        w = init.normal((2000,), std=0.05, rng=0)
        assert abs(w.std() - 0.05) < 0.01
        assert abs(w.mean()) < 0.01

    def test_deterministic(self):
        np.testing.assert_array_equal(init.normal((5,), rng=3),
                                      init.normal((5,), rng=3))


class TestHeNormal:
    def test_std_matches_fan_in(self):
        fan_in = 50
        w = init.he_normal((fan_in, 4000), rng=0)
        expected = np.sqrt(2.0 / fan_in)
        assert abs(w.std() - expected) < 0.02

    def test_scalar_shape(self):
        assert init.he_normal((3,), rng=0).shape == (3,)


class TestXavierUniform:
    def test_bound(self):
        w = init.xavier_uniform((30, 20), rng=0)
        bound = np.sqrt(6.0 / 50)
        assert w.max() <= bound
        assert w.min() >= -bound

    def test_roughly_uniform(self):
        w = init.xavier_uniform((100, 100), rng=0)
        bound = np.sqrt(6.0 / 200)
        # Uniform std = bound / sqrt(3)
        assert abs(w.std() - bound / np.sqrt(3)) < 0.01


class TestZeros:
    def test_all_zero(self):
        np.testing.assert_array_equal(init.zeros((3, 2)), 0.0)
