"""ALS factorization and ridge-map substrate tests."""

import numpy as np
import pytest

from repro.baselines.mf import als_factorize, ridge_map


def low_rank_matrix(rng, num_users=20, num_items=15, rank=3):
    u = rng.random((num_users, rank))
    v = rng.random((num_items, rank))
    return (u @ v.T > 1.1).astype(float) * 3.0


class TestALS:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        matrix = low_rank_matrix(rng)
        users, items = als_factorize(matrix, rank=4, iterations=5, rng=0)
        assert users.shape == (20, 4)
        assert items.shape == (15, 4)

    def test_reconstructs_preference_ordering(self):
        rng = np.random.default_rng(1)
        matrix = low_rank_matrix(rng)
        users, items = als_factorize(matrix, rank=6, iterations=15, rng=0)
        scores = users @ items.T
        # Observed entries should outrank unobserved entries on average.
        observed = scores[matrix > 0].mean()
        unobserved = scores[matrix == 0].mean()
        assert observed > unobserved

    def test_deterministic_per_seed(self):
        rng = np.random.default_rng(2)
        matrix = low_rank_matrix(rng)
        u1, _ = als_factorize(matrix, rank=3, iterations=3, rng=7)
        u2, _ = als_factorize(matrix, rank=3, iterations=3, rng=7)
        np.testing.assert_array_equal(u1, u2)

    def test_validation(self):
        matrix = np.zeros((3, 3))
        with pytest.raises(ValueError):
            als_factorize(matrix, rank=0)
        with pytest.raises(ValueError):
            als_factorize(matrix, rank=2, reg=-1.0)
        with pytest.raises(ValueError):
            als_factorize(matrix, rank=2, iterations=0)


class TestRidgeMap:
    def test_recovers_linear_map(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(100, 8))
        true_map = rng.normal(size=(8, 4))
        targets = features @ true_map
        learned = ridge_map(features, targets, reg=1e-6)
        np.testing.assert_allclose(learned, true_map, atol=1e-4)

    def test_regularization_shrinks(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(30, 5))
        targets = rng.normal(size=(30, 2))
        weak = ridge_map(features, targets, reg=1e-6)
        strong = ridge_map(features, targets, reg=1e3)
        assert np.linalg.norm(strong) < np.linalg.norm(weak)

    def test_negative_reg_rejected(self):
        with pytest.raises(ValueError):
            ridge_map(np.ones((2, 2)), np.ones((2, 1)), reg=-1.0)
