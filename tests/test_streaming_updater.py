"""Incremental updater: touched-rows-only movement, negative hygiene."""

import numpy as np
import pytest

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.streaming import CheckinEvent, IncrementalUpdater

TARGET = "shelbyville"


def make_updater(dataset, index, **overrides):
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       STTransRecConfig(embedding_dim=8, seed=3))
    model.eval()
    pool = [p.poi_id for p in dataset.pois_in_city(TARGET)]
    kwargs = dict(learning_rate=0.1, fold_in_steps=2, retrain_lr=0.05,
                  retrain_steps=3, num_negatives=2, rng=0)
    kwargs.update(overrides)
    return model, IncrementalUpdater(model, index, dataset, pool, **kwargs)


@pytest.fixture(scope="module")
def world(tiny_dataset):
    dataset, _truth = tiny_dataset
    return dataset, dataset.build_index()


def stream_events(dataset, index, num_users=3, per_user=2):
    """Valid target-city events for the first few indexed users."""
    pois = dataset.pois_in_city(TARGET)
    user_ids = sorted(dataset.users)[:num_users]
    events = []
    ts = max(c.timestamp for c in dataset.checkins)
    for i, uid in enumerate(user_ids):
        for j in range(per_user):
            ts += 1.0
            poi = pois[(i * per_user + j) % len(pois)]
            events.append(CheckinEvent(seq=len(events), user_id=uid,
                                       poi_id=poi.poi_id, city=TARGET,
                                       timestamp=ts))
    return events


def embedding_snapshot(model):
    return model.user_embeddings.weight.data.copy()


class TestIngest:
    def test_only_touched_rows_move(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        events = stream_events(dataset, index)
        before = embedding_snapshot(model)
        stats = updater.ingest(events)
        after = embedding_snapshot(model)

        touched = sorted({index.users.index_of(e.user_id) for e in events})
        untouched = np.setdiff1d(np.arange(index.num_users), touched)
        np.testing.assert_array_equal(after[untouched], before[untouched])
        for row in touched:
            assert not np.array_equal(after[row], before[row])
        assert stats.events_ingested == len(events)
        assert stats.events_skipped == 0
        assert stats.fold_in_steps == updater.fold_in_steps
        assert stats.last_seq == events[-1].seq

    def test_poi_side_parameters_never_change(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        before = model.poi_embeddings.weight.data.copy()
        updater.ingest(stream_events(dataset, index))
        updater.retrain()
        np.testing.assert_array_equal(
            model.poi_embeddings.weight.data, before)

    def test_unknown_entities_are_counted_and_skipped(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        known = stream_events(dataset, index, num_users=1, per_user=1)[0]
        unknown = [
            CheckinEvent(seq=1, user_id=10 ** 9, poi_id=known.poi_id,
                         city=TARGET, timestamp=known.timestamp + 1),
            CheckinEvent(seq=2, user_id=known.user_id, poi_id=10 ** 9,
                         city=TARGET, timestamp=known.timestamp + 2),
        ]
        before = embedding_snapshot(model)
        stats = updater.ingest(unknown)
        np.testing.assert_array_equal(embedding_snapshot(model), before)
        assert stats.events_ingested == 0
        assert stats.events_skipped == 2

        stats = updater.ingest([known] + unknown)
        assert stats.events_ingested == 1
        assert stats.events_skipped == 4

    def test_training_mode_restored(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        model.train()
        updater.ingest(stream_events(dataset, index))
        assert model.training
        model.eval()
        updater.ingest(stream_events(dataset, index, num_users=1))
        assert not model.training


class TestNegativeSampling:
    def test_negatives_never_visited(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        events = stream_events(dataset, index)
        updater.ingest(events)

        user_rows = np.array(
            [index.users.index_of(e.user_id) for e in events] * 10,
            dtype=np.int64)
        negatives = updater._sample_negatives(user_rows)
        keys = user_rows * len(index.pois) + negatives
        assert not updater._is_visited(keys).any()
        # Every negative comes from the configured pool.
        assert np.isin(negatives, updater._pool).all()

    def test_ingested_pois_become_visited(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        event = stream_events(dataset, index, num_users=1, per_user=1)[0]
        u = index.users.index_of(event.user_id)
        p = index.pois.index_of(event.poi_id)
        key = np.array([u * len(index.pois) + p], dtype=np.int64)
        assert not updater._is_visited(key)[0]
        updater.ingest([event])
        assert updater._is_visited(key)[0]

    def test_empty_pool_raises(self, world):
        dataset, index = world
        model = STTransRec(index.num_users, index.num_pois,
                           index.num_words,
                           STTransRecConfig(embedding_dim=8, seed=3))
        with pytest.raises(ValueError, match="empty"):
            IncrementalUpdater(model, index, dataset, [])


class TestRetrain:
    def test_retrain_moves_only_touched_rows(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        events = stream_events(dataset, index)
        updater.ingest(events)
        before = embedding_snapshot(model)
        stats = updater.retrain()
        after = embedding_snapshot(model)

        touched = sorted({index.users.index_of(e.user_id) for e in events})
        untouched = np.setdiff1d(np.arange(index.num_users), touched)
        np.testing.assert_array_equal(after[untouched], before[untouched])
        assert any(not np.array_equal(after[row], before[row])
                   for row in touched)
        assert stats.retrain_rounds == 1

    def test_retrain_without_history_is_noop(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        before = embedding_snapshot(model)
        stats = updater.retrain()
        np.testing.assert_array_equal(embedding_snapshot(model), before)
        assert stats.retrain_rounds == 0

    def test_sparse_grad_flag_restored(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        updater.ingest(stream_events(dataset, index))
        assert not model.user_embeddings.sparse_grad
        updater.retrain()
        assert not model.user_embeddings.sparse_grad
        model.user_embeddings.sparse_grad = True
        updater.retrain()
        assert model.user_embeddings.sparse_grad

    def test_history_is_bounded(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index,
                                      max_history_per_user=3)
        events = stream_events(dataset, index, num_users=1, per_user=8)
        updater.ingest(events)
        row = index.users.index_of(events[0].user_id)
        history = updater._history[row]
        assert len(history) == 3
        expected = [index.pois.index_of(e.poi_id) for e in events[-3:]]
        assert history == expected


class TestTouchedTracking:
    def test_drain_touched_returns_and_clears(self, world):
        dataset, index = world
        model, updater = make_updater(dataset, index)
        events = stream_events(dataset, index)
        updater.ingest(events)
        expected = sorted({e.user_id for e in events})
        assert updater.touched_users() == expected
        assert updater.drain_touched() == expected
        assert updater.touched_users() == []
        # History survives the drain (retrain still has replay data).
        assert updater.retrain().retrain_rounds == 1
