"""Embedding analysis and cross-city matching tests."""

import numpy as np
import pytest

from repro.analysis import (
    EmbeddingSpace,
    cross_city_alignment,
    embedding_mmd,
    match_pois_across_cities,
)
from repro.analysis.matching import topic_match_rate
from repro.core.trainer import STTransRecTrainer

from tests.test_core_trainer import fast_config


@pytest.fixture(scope="module")
def trained_space(tiny_split):
    trainer = STTransRecTrainer(tiny_split, fast_config(epochs=5,
                                                        pretrain_epochs=8))
    trainer.fit()
    return EmbeddingSpace(
        vectors=trainer.model.poi_vectors(),
        index=trainer.index,
        dataset=tiny_split.train,
    )


class TestEmbeddingSpace:
    def test_shape_validation(self, tiny_split):
        index = tiny_split.train.build_index()
        with pytest.raises(ValueError):
            EmbeddingSpace(np.zeros((3, 4)), index, tiny_split.train)

    def test_vector_of(self, trained_space):
        poi_id = next(iter(trained_space.dataset.pois))
        vec = trained_space.vector_of(poi_id)
        assert vec.shape == (trained_space.vectors.shape[1],)

    def test_rows_for_city(self, trained_space):
        block, ids = trained_space.rows_for_city("shelbyville")
        assert block.shape[0] == len(ids) == 36

    def test_unknown_city_rejected(self, trained_space):
        with pytest.raises(ValueError):
            trained_space.rows_for_city("atlantis")

    def test_normalized_unit_norm(self, trained_space):
        norms = np.linalg.norm(trained_space.normalized(), axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)


class TestAlignment:
    def test_alignment_fields(self, trained_space):
        alignment = cross_city_alignment(trained_space, "springfield",
                                         "shelbyville")
        assert alignment.topics_compared > 0
        assert -1.0 <= alignment.same_topic_cosine <= 1.0
        assert alignment.margin == (alignment.same_topic_cosine
                                    - alignment.different_topic_cosine)

    def test_trained_model_has_positive_margin(self, trained_space):
        alignment = cross_city_alignment(trained_space, "springfield",
                                         "shelbyville")
        assert alignment.margin > 0.0

    def test_real_data_without_topics_rejected(self, trained_space):
        import dataclasses
        from repro.data.dataset import CheckinDataset
        from repro.data.records import POI
        stripped = CheckinDataset(
            [POI(p.poi_id, p.city, p.location, p.words, topic=-1)
             for p in trained_space.dataset.pois.values()],
            trained_space.dataset.checkins,
        )
        space = EmbeddingSpace(trained_space.vectors, trained_space.index,
                               stripped)
        with pytest.raises(ValueError):
            cross_city_alignment(space, "springfield", "shelbyville")


class TestEmbeddingMMD:
    def test_non_negative_and_finite(self, trained_space):
        value = embedding_mmd(trained_space, "springfield", "shelbyville")
        assert np.isfinite(value)
        assert value >= -1e-9

    def test_same_city_near_zero(self, trained_space):
        value = embedding_mmd(trained_space, "shelbyville", "shelbyville")
        assert value < 0.05


class TestMatching:
    def test_matches_cover_requested_pois(self, trained_space):
        _, source_ids = trained_space.rows_for_city("springfield")
        matches = match_pois_across_cities(
            trained_space, "springfield", "shelbyville",
            poi_ids=source_ids[:5], top_k=2,
        )
        assert len(matches) == 10
        assert all(trained_space.dataset.pois[m.target_poi_id].city
                   == "shelbyville" for m in matches)

    def test_cosines_sorted_per_source(self, trained_space):
        _, source_ids = trained_space.rows_for_city("springfield")
        matches = match_pois_across_cities(
            trained_space, "springfield", "shelbyville",
            poi_ids=source_ids[:1], top_k=3,
        )
        cosines = [m.cosine for m in matches]
        assert cosines == sorted(cosines, reverse=True)

    def test_wrong_city_poi_rejected(self, trained_space):
        _, target_ids = trained_space.rows_for_city("shelbyville")
        with pytest.raises(ValueError):
            match_pois_across_cities(
                trained_space, "springfield", "shelbyville",
                poi_ids=target_ids[:1],
            )

    def test_topic_match_rate_above_chance(self, trained_space):
        matches = match_pois_across_cities(
            trained_space, "springfield", "shelbyville", top_k=1,
        )
        rate = topic_match_rate(matches)
        # 4 topics → chance is 0.25; transfer should beat it comfortably.
        assert rate > 0.4

    def test_topic_match_rate_requires_labels(self):
        with pytest.raises(ValueError):
            topic_match_rate([])
