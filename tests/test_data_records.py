"""POI and CheckinRecord validation tests."""

import pytest

from repro.data.records import POI, CheckinRecord


class TestPOI:
    def test_basic_construction(self):
        poi = POI(poi_id=1, city="la", location=(1.5, 2.5),
                  words=["park", "view"], topic=3)
        assert poi.location == (1.5, 2.5)
        assert poi.words == ("park", "view")
        assert poi.topic == 3

    def test_location_coerced_to_float_tuple(self):
        poi = POI(poi_id=0, city="la", location=[1, 2], words=())
        assert poi.location == (1.0, 2.0)
        assert isinstance(poi.location, tuple)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            POI(poi_id=-1, city="la", location=(0, 0), words=())

    def test_bad_location_rejected(self):
        with pytest.raises(ValueError):
            POI(poi_id=0, city="la", location=(1.0,), words=())

    def test_frozen(self):
        poi = POI(poi_id=0, city="la", location=(0, 0), words=())
        with pytest.raises(AttributeError):
            poi.city = "sf"

    def test_default_topic_unknown(self):
        assert POI(poi_id=0, city="la", location=(0, 0), words=()).topic == -1


class TestCheckinRecord:
    def test_basic_construction(self):
        rec = CheckinRecord(user_id=1, poi_id=2, city="la", timestamp=5.0)
        assert rec.timestamp == 5.0

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            CheckinRecord(user_id=-1, poi_id=0, city="la")
        with pytest.raises(ValueError):
            CheckinRecord(user_id=0, poi_id=-2, city="la")

    def test_equality_is_by_value(self):
        a = CheckinRecord(user_id=1, poi_id=2, city="la", timestamp=1.0)
        b = CheckinRecord(user_id=1, poi_id=2, city="la", timestamp=1.0)
        assert a == b
