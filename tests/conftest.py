"""Shared fixtures: tiny synthetic datasets sized for fast tests."""

from __future__ import annotations

import pytest

from repro.data.split import make_crossing_city_split
from repro.data.synthetic import CitySpec, SyntheticConfig, generate_dataset


def tiny_config(seed: int = 3) -> SyntheticConfig:
    """A minimal two-city world: fast to generate, fast to train on."""
    return SyntheticConfig(
        cities=[
            CitySpec("springfield", grid_shape=(4, 4), num_regions=2,
                     num_pois=40, num_local_users=20,
                     accessibility_skew=1.2, topic_tilt=0.8),
            CitySpec("shelbyville", grid_shape=(4, 4), num_regions=2,
                     num_pois=36, num_local_users=18,
                     accessibility_skew=1.4, topic_tilt=0.5),
        ],
        target_city="shelbyville",
        num_topics=4,
        shared_words_per_topic=6,
        city_words_per_topic=3,
        num_generic_words=8,
        generic_fraction=0.15,
        words_per_poi=5,
        city_dependent_fraction=0.4,
        num_crossing_users=10,
        checkins_per_local_user=15,
        crossing_target_checkins=4,
        drift=0.25,
        trips_per_user=4,
        preference_concentration=0.25,
        seed=seed,
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    """(dataset, ground_truth) for the tiny world."""
    return generate_dataset(tiny_config())


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    dataset, _truth = tiny_dataset
    return make_crossing_city_split(dataset, "shelbyville")


@pytest.fixture(scope="session")
def tiny_truth(tiny_dataset):
    _dataset, truth = tiny_dataset
    return truth
