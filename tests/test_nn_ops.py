"""Multi-input functional ops: concat, stack, rowwise_dot, distances."""

import numpy as np
import pytest

from repro.nn.ops import concat, pairwise_sq_dists, rowwise_dot, stack
from repro.nn.tensor import Tensor

from tests.test_nn_tensor import assert_grad_matches


class TestConcat:
    def test_values_axis1(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        np.testing.assert_array_equal(out.data[:, :2], 1.0)
        np.testing.assert_array_equal(out.data[:, 2:], 0.0)

    def test_grad_splits_between_parents(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (concat([a, b], axis=1) ** 2).sum(), a, b)

    def test_negative_axis(self):
        a = Tensor(np.ones((2, 2)))
        assert concat([a, a], axis=-1).shape == (2, 4)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat([])

    def test_three_way_grad(self):
        rng = np.random.default_rng(1)
        parts = [Tensor(rng.normal(size=(2, i + 1)), requires_grad=True)
                 for i in range(3)]
        assert_grad_matches(
            lambda: (concat(parts, axis=1) ** 2).sum(), *parts
        )


class TestStack:
    def test_values_and_shape(self):
        a = Tensor(np.ones(3))
        b = Tensor(np.zeros(3))
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)

    def test_grad(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert_grad_matches(lambda: (stack([a, b]) ** 2).sum(), a, b)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            stack([])


class TestRowwiseDot:
    def test_matches_manual(self):
        rng = np.random.default_rng(3)
        a_data = rng.normal(size=(4, 5))
        b_data = rng.normal(size=(4, 5))
        out = rowwise_dot(Tensor(a_data), Tensor(b_data))
        np.testing.assert_allclose(out.data, (a_data * b_data).sum(axis=1))

    def test_grad(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert_grad_matches(lambda: rowwise_dot(a, b).sum(), a, b)


class TestPairwiseSqDists:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=(4, 3))
        out = pairwise_sq_dists(Tensor(x), Tensor(y)).data
        direct = ((x[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(out, direct, atol=1e-10)

    def test_self_distance_zero_diag(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(5, 3))
        out = pairwise_sq_dists(Tensor(x), Tensor(x)).data
        np.testing.assert_allclose(np.diag(out), 0.0, atol=1e-9)

    def test_never_negative(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(20, 2)) * 1e-8
        out = pairwise_sq_dists(Tensor(x), Tensor(x)).data
        assert (out >= 0).all()

    def test_grad(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        y = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        assert_grad_matches(
            lambda: (pairwise_sq_dists(x, y) * 0.3).sum(), x, y
        )
