"""Geometry helper tests."""

import numpy as np
import pytest

from repro.spatial.geometry import centroid, euclidean, pairwise_distances


class TestEuclidean:
    def test_pythagorean(self):
        assert euclidean((0, 0), (3, 4)) == 5.0

    def test_symmetric(self):
        assert euclidean((1, 2), (4, 6)) == euclidean((4, 6), (1, 2))

    def test_zero_for_same_point(self):
        assert euclidean((2.5, -1.0), (2.5, -1.0)) == 0.0


class TestCentroid:
    def test_mean_point(self):
        assert centroid([(0, 0), (2, 4)]) == (1.0, 2.0)

    def test_single_point(self):
        assert centroid([(3, 7)]) == (3.0, 7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])


class TestPairwiseDistances:
    def test_matches_euclidean(self):
        points = [(0, 0), (3, 4), (1, 1)]
        matrix = pairwise_distances(points)
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        np.testing.assert_allclose(matrix[0, 1], 5.0)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            pairwise_distances([(1, 2, 3)])
