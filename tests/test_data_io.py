"""Dataset JSONL persistence tests."""

import json

import pytest

from repro.data.io import load_dataset, save_dataset


class TestRoundTrip:
    def test_full_roundtrip(self, tiny_dataset, tmp_path):
        dataset, _ = tiny_dataset
        path = tmp_path / "data.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.num_checkins() == dataset.num_checkins()
        assert set(loaded.pois) == set(dataset.pois)
        # deep equality on one POI including topic
        poi_id = next(iter(dataset.pois))
        assert loaded.pois[poi_id] == dataset.pois[poi_id]
        assert loaded.checkins[:10] == dataset.checkins[:10]

    def test_creates_parent_directories(self, tiny_dataset, tmp_path):
        dataset, _ = tiny_dataset
        path = tmp_path / "deep" / "nested" / "data.jsonl"
        save_dataset(dataset, path)
        assert path.exists()


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_dataset(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "other.v9"}) + "\n")
        with pytest.raises(ValueError, match="format"):
            load_dataset(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad2.jsonl"
        lines = [json.dumps({"format": "repro.checkins.v1"}),
                 json.dumps({"type": "alien"})]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="alien"):
            load_dataset(path)
