"""The resilient serving path under injected serving-tier faults.

Each test drives :meth:`ShardRouter.recommend_resilient` against a real
2-shard fleet with a :class:`ChaosPlan` injecting the fault under test,
and asserts on the *response contract*: every known user gets an
answer, every answer carries a truthful quality tag, and latency is
bounded by the deadline budget rather than the fault duration.
"""

import multiprocessing as mp

import pytest

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.fleet.loadgen import run_chaos_loop
from repro.fleet.router import ShardRouter
from repro.parallel.supervisor import SupervisionConfig
from repro.reliability import ChaosPlan, WindowFault
from repro.resilience import (
    QUALITY_CACHED,
    QUALITY_FALLBACK,
    QUALITY_FULL,
    QUALITY_TIERS,
    ResilienceConfig,
)
from repro.serving.service import RecommendationService

TARGET = "shelbyville"
K = 5

# Fault windows stay open forever: recovery must come from the breaker
# restart / crash respawn clearing the injected plan, not from expiry.
FOREVER = 1_000_000


@pytest.fixture(scope="module")
def world(tiny_dataset):
    dataset, _truth = tiny_dataset
    index = dataset.build_index()
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       STTransRecConfig(embedding_dim=8, seed=3))
    model.eval()
    return model, index, dataset


@pytest.fixture(scope="module")
def reference(world):
    model, index, dataset = world
    with RecommendationService(model, index, dataset, TARGET,
                               cache_size=0, use_batcher=False) as service:
        users = sorted(dataset.users)
        return users, service.recommend_many(users, k=K)


def _supervision(**kwargs):
    kwargs.setdefault("step_timeout", 60.0)
    kwargs.setdefault("max_respawns", 2)
    kwargs.setdefault("respawn_backoff", 0.01)
    return SupervisionConfig(**kwargs)


def _generous():
    """A config whose budgets dwarf tiny-world service times: with no
    faults injected, nothing should hedge, shed, trip, or degrade."""
    return ResilienceConfig(deadline_ms=10_000.0, hop_timeout_ms=5_000.0,
                            hedge_after_ms=2_000.0, poll_interval_ms=5.0)


class TestResilientParity:
    def test_no_faults_bit_identical_full_quality(self, world, reference):
        model, index, dataset = world
        users, expected = reference
        for num_shards in (1, 2, 3):
            with ShardRouter(model, index, dataset, TARGET,
                             num_shards=num_shards,
                             resilience=_generous()) as router:
                got = router.recommend_resilient(users, k=K)
                assert set(got) == set(users)
                for user in users:
                    response = got[user]
                    assert response.quality == QUALITY_FULL
                    assert response.deadline_met
                    assert not response.shed
                    assert response.items == expected[user]
                stats = router.resilience_stats()
                assert stats["hedges"] == 0
                assert stats["admission"]["shed"] == 0
                # Plain path still bit-identical alongside the
                # resilient one (deadlines off => same ranking).
                assert router.recommend_many(users[:4], k=K) == {
                    u: expected[u] for u in users[:4]}

    def test_unknown_users_skipped_and_duplicates_collapse(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        probe = users[0]
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         resilience=_generous()) as router:
            got = router.recommend_resilient([probe, probe, 10**9], k=K)
            assert set(got) == {probe}
            assert got[probe].items == expected[probe]

    def test_requires_resilience_config(self, world):
        model, index, dataset = world
        router = ShardRouter(model, index, dataset, TARGET, num_shards=1)
        try:
            with pytest.raises(RuntimeError):
                router.recommend_resilient([0], k=K)
            with pytest.raises(RuntimeError):
                router.resilience_stats()
        finally:
            router.close()


class TestHedging:
    def test_slow_shard_hedge_wins_at_full_quality(self, world, reference):
        model, index, dataset = world
        users, expected = reference
        # Shard 0 stalls 300ms on its first few requests; the hedge
        # fires after 15ms of silence and shard 1 answers the slice.
        plan = ChaosPlan(windows=[
            WindowFault.slow_shard(0, 0, 3, 0.3)])
        config = ResilienceConfig(
            deadline_ms=5_000.0, hop_timeout_ms=2_000.0,
            hedge_after_ms=15.0, poll_interval_ms=2.0)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan, supervision=_supervision(),
                         resilience=config) as router:
            got = router.recommend_resilient(users[:4], k=K)
            stats = router.resilience_stats()
        assert stats["hedges"] >= 1
        for user in users[:4]:
            assert got[user].quality == QUALITY_FULL
            assert got[user].items == expected[user]
            assert got[user].deadline_met


class TestCircuitBreaker:
    def test_breaker_opens_restarts_and_probe_recovers(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        # Shard 0 stalls forever: only the breaker-triggered restart
        # (which clears the injected plan) can bring it back.
        plan = ChaosPlan(windows=[
            WindowFault.slow_shard(0, 0, FOREVER, 10.0)])
        config = ResilienceConfig(
            deadline_ms=2_000.0, hop_timeout_ms=60.0, hedge_after_ms=20.0,
            poll_interval_ms=2.0, breaker_failure_threshold=1,
            breaker_probe_backoff_ms=30.0, breaker_restart_shard=True)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan, supervision=_supervision(),
                         resilience=config) as router:
            # First wave: the stalled slice times out, the breaker
            # trips, and the supervisor replaces the shard.
            first = router.recommend_resilient(users[:4], k=K)
            mid = router.resilience_stats()
            assert mid["breaker_opens"] >= 1
            assert mid["breaker_restarts"] >= 1
            # Later waves: the half-open probe hits the restarted
            # (fault-free) incarnation, succeeds, and closes the
            # breaker again.
            import time
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                last = router.recommend_resilient(users[:4], k=K)
                state = router.resilience_stats()["breakers"][0]["state"]
                if state == "closed":
                    break
                time.sleep(0.05)
            final = router.resilience_stats()
            assert final["breakers"][0]["state"] == "closed"
            assert router.stats()["faults"]["restarts"] >= 1
        # Every wave answered every user within its (generous) budget.
        for got in (first, last):
            assert set(got) == set(users[:4])
            for response in got.values():
                assert response.quality in QUALITY_TIERS
        # And the recovered fleet is back to bit-identical answers.
        assert {u: r.items for u, r in last.items()} == {
            u: expected[u] for u in users[:4]}
        assert not mp.active_children()


class TestLoadShedding:
    def test_overflow_is_shed_flagged_and_counted(self, world):
        model, index, dataset = world
        users = sorted(dataset.users)
        config = ResilienceConfig(
            deadline_ms=10_000.0, hop_timeout_ms=5_000.0,
            hedge_after_ms=2_000.0, admission_queue_limit=1)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         resilience=config) as router:
            got = router.recommend_resilient(users[:5], k=K)
            stats = router.resilience_stats()
        shed = [r for r in got.values() if r.shed]
        served = [r for r in got.values() if not r.shed]
        assert len(served) == 1 and len(shed) == 4
        assert all(r.shed_reason == "queue_full" for r in shed)
        # Shed requests are still *answered* (from the fallback chain),
        # just not at full quality.
        assert all(r.quality in (QUALITY_CACHED, QUALITY_FALLBACK)
                   for r in shed)
        assert all(r.items for r in shed)       # popularity tier is on
        assert stats["admission"]["shed"] == 4
        assert stats["admission"]["shed_by_reason"]["queue_full"] == 4


class TestFallbackChain:
    def test_total_fleet_loss_degrades_instead_of_raising(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        probe = users[0]
        # Both shards crash on their first request and the respawn
        # budget is zero: the fleet is permanently empty.
        plan = ChaosPlan(windows=[
            WindowFault.crash_under_load(0, 0, FOREVER),
            WindowFault.crash_under_load(1, 0, FOREVER)])
        config = ResilienceConfig(
            deadline_ms=2_000.0, hop_timeout_ms=500.0,
            hedge_after_ms=100.0, breaker_restart_shard=False)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan,
                         supervision=_supervision(max_respawns=0),
                         resilience=config) as router:
            # Warm the result cache while the fleet is still up?  No —
            # it is already doomed; this request rides the fallbacks.
            got = router.recommend_resilient([probe], k=K)
            assert got[probe].quality == QUALITY_FALLBACK
            assert got[probe].items        # popularity is always there
            # A second round still answers (and still does not raise).
            again = router.recommend_resilient(users[:3], k=K)
            assert all(r.quality in (QUALITY_CACHED, QUALITY_FALLBACK)
                       for r in again.values())
        assert not mp.active_children()

    def test_cached_tier_beats_popularity_after_fleet_loss(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        probe = users[0]
        # Crash on the *second* request: the first warms the cache.
        plan = ChaosPlan(windows=[
            WindowFault.crash_under_load(0, 1, FOREVER)])
        config = ResilienceConfig(
            deadline_ms=2_000.0, hop_timeout_ms=500.0,
            hedge_after_ms=100.0, breaker_restart_shard=False,
            cache_ttl_seconds=60.0)
        with ShardRouter(model, index, dataset, TARGET, num_shards=1,
                         fault_plan=plan,
                         supervision=_supervision(max_respawns=0),
                         resilience=config) as router:
            warm = router.recommend_resilient([probe], k=K)
            assert warm[probe].quality == QUALITY_FULL
            got = router.recommend_resilient([probe], k=K)
            assert got[probe].quality == QUALITY_CACHED
            # The cached ranking is the previously exact one.
            assert got[probe].items == expected[probe]


class TestDeadlineBounds:
    def test_p99_bounded_by_deadline_not_fault_duration(
            self, world, reference):
        model, index, dataset = world
        users, expected = reference
        # A 2s stall against a 150ms budget: answers must come from
        # hedges/fallbacks near the deadline, never from waiting out
        # the stall.
        plan = ChaosPlan(windows=[
            WindowFault.slow_shard(0, 0, FOREVER, 2.0)])
        config = ResilienceConfig(
            deadline_ms=150.0, hop_timeout_ms=60.0, hedge_after_ms=20.0,
            poll_interval_ms=2.0, finalize_margin_ms=5.0,
            breaker_restart_shard=False)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan, supervision=_supervision(),
                         resilience=config) as router:
            got = router.recommend_resilient(users[:6], k=K)
        assert set(got) == set(users[:6])
        for response in got.values():
            # Far below the 2000ms stall; slack covers scheduler noise.
            assert response.latency_ms < 1_000.0
            assert response.quality in QUALITY_TIERS

    def test_expired_deadline_is_shed_at_the_door(self, world):
        model, index, dataset = world
        users = sorted(dataset.users)
        import time
        config = _generous()
        with ShardRouter(model, index, dataset, TARGET, num_shards=1,
                         resilience=config) as router:
            from repro.resilience import Deadline
            spent = Deadline(1.0, start=time.perf_counter() - 1.0)
            got = router.recommend_resilient([users[0]], k=K,
                                             deadlines=[spent])
        response = got[users[0]]
        assert response.shed and response.shed_reason == "expired"
        assert not response.deadline_met


class TestChaosLoop:
    def test_availability_holds_under_slow_plus_crash(self, world):
        model, index, dataset = world
        users = sorted(dataset.users)
        plan = ChaosPlan(windows=[
            WindowFault.slow_shard(0, 2, FOREVER, 0.4),
            WindowFault.crash_under_load(1, 4, 5)])
        config = ResilienceConfig(
            deadline_ms=200.0, hop_timeout_ms=80.0, hedge_after_ms=25.0,
            poll_interval_ms=2.0, finalize_margin_ms=4.0,
            breaker_failure_threshold=2, breaker_probe_backoff_ms=100.0)
        with ShardRouter(model, index, dataset, TARGET, num_shards=2,
                         fault_plan=plan, supervision=_supervision(),
                         resilience=config) as router:
            result = run_chaos_loop(router, users, rate=60.0,
                                    duration_s=1.5, k=K,
                                    deadline_ms=200.0, seed=11)
        assert result.offered > 0
        assert result.availability >= 0.99
        assert result.answered == sum(result.quality_counts.values())
        assert set(result.quality_counts) <= set(QUALITY_TIERS)
        assert not mp.active_children()
