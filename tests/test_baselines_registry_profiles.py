"""Registry profile tests: presets are valid, consistent, and distinct."""

import pytest

from repro.baselines.registry import (
    FOURSQUARE_PROFILE,
    PROFILES,
    YELP_PROFILE,
    MethodProfile,
)


class TestProfiles:
    def test_registry_contains_both_presets(self):
        assert PROFILES["foursquare"] is FOURSQUARE_PROFILE
        assert PROFILES["yelp"] is YELP_PROFILE

    def test_profiles_follow_paper_per_dataset_settings(self):
        # δ = 0.10 vs 0.25 and α = 0.10 vs 0.11 per Section 4.1.
        assert FOURSQUARE_PROFILE.segmentation_threshold == 0.10
        assert YELP_PROFILE.segmentation_threshold == 0.25
        assert FOURSQUARE_PROFILE.resample_alpha == 0.10
        assert YELP_PROFILE.resample_alpha == 0.11

    def test_profiles_produce_valid_configs(self):
        for profile in PROFILES.values():
            config = profile.st_transrec_config()
            assert config.embedding_dim == profile.embedding_dim
            assert config.dropout == profile.dropout
            assert config.weight_decay == profile.weight_decay

    def test_config_overrides_beat_profile(self):
        config = FOURSQUARE_PROFILE.st_transrec_config(embedding_dim=7)
        assert config.embedding_dim == 7

    def test_profile_invalid_values_surface_at_config_time(self):
        bad = MethodProfile(dropout=2.0)
        with pytest.raises(ValueError):
            bad.st_transrec_config()
