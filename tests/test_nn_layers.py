"""Layer tests: Linear, Embedding, Dropout, Sequential, MLP."""

import numpy as np
import pytest

from repro.nn.layers import MLP, Dropout, Embedding, Linear, ReLU, Sequential, Sigmoid
from repro.nn.tensor import Tensor


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(3, 2, rng=0)
        layer.weight.data[...] = np.eye(3, 2)
        layer.bias.data[...] = [1.0, 1.0]
        out = layer(Tensor(np.array([[1.0, 2.0, 3.0]])))
        np.testing.assert_allclose(out.data, [[2.0, 3.0]])

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)
        with pytest.raises(ValueError):
            Linear(2, -1)

    def test_gradients_flow(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_returns_rows(self):
        emb = Embedding(5, 3, rng=0)
        out = emb(np.array([1, 3]))
        np.testing.assert_array_equal(out.data, emb.weight.data[[1, 3]])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 3, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_only_touched_rows_get_grad(self):
        emb = Embedding(5, 3, rng=0)
        emb(np.array([2])).sum().backward()
        grad = emb.weight.grad
        assert grad[2].sum() == 3.0
        np.testing.assert_array_equal(grad[[0, 1, 3, 4]], 0.0)

    def test_gaussian_init_scale(self):
        emb = Embedding(500, 16, std=0.01, rng=0)
        assert abs(emb.weight.data.std() - 0.01) < 0.002


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_zero_rate_is_identity_in_train(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones((4, 4)))
        assert drop(x) is x

    def test_training_scales_survivors(self):
        drop = Dropout(0.5, rng=0)
        out = drop(Tensor(np.ones((100, 100)))).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        # roughly half survive
        assert 0.4 < (out > 0).mean() < 0.6

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestSequentialAndActivations:
    def test_applies_in_order(self):
        seq = Sequential(ReLU(), Sigmoid())
        out = seq(Tensor(np.array([-1.0, 0.0])))
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_len_and_getitem(self):
        seq = Sequential(ReLU(), Sigmoid())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)

    def test_train_eval_propagates(self):
        drop = Dropout(0.5, rng=0)
        seq = Sequential(Linear(2, 2, rng=0), drop)
        seq.eval()
        assert not drop.training
        seq.train()
        assert drop.training


class TestMLP:
    def test_output_is_flat_logits(self):
        mlp = MLP(6, [8, 4], rng=0)
        out = mlp(Tensor(np.zeros((5, 6))))
        assert out.shape == (5,)

    def test_depth_property(self):
        assert MLP(4, [8, 4, 2], rng=0).depth == 3

    def test_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            MLP(4, [])

    def test_parameter_count(self):
        mlp = MLP(4, [8], dropout=0.0, rng=0)
        # Linear(4,8): 32+8, head Linear(8,1): 8+1
        assert mlp.num_parameters() == 32 + 8 + 8 + 1

    def test_dropout_layers_inserted(self):
        mlp = MLP(4, [8, 8], dropout=0.2, rng=0)
        kinds = [type(s).__name__ for s in mlp.tower.steps]
        assert kinds.count("Dropout") == 2
