"""Layer tests: Linear, Embedding, Dropout, Sequential, MLP."""

import numpy as np
import pytest

from repro.nn.layers import MLP, Dropout, Embedding, Linear, ReLU, Sequential, Sigmoid
from repro.nn.tensor import Tensor


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(3, 2, rng=0)
        layer.weight.data[...] = np.eye(3, 2)
        layer.bias.data[...] = [1.0, 1.0]
        out = layer(Tensor(np.array([[1.0, 2.0, 3.0]])))
        np.testing.assert_allclose(out.data, [[2.0, 3.0]])

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)
        with pytest.raises(ValueError):
            Linear(2, -1)

    def test_gradients_flow(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_returns_rows(self):
        emb = Embedding(5, 3, rng=0)
        out = emb(np.array([1, 3]))
        np.testing.assert_array_equal(out.data, emb.weight.data[[1, 3]])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 3, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_only_touched_rows_get_grad(self):
        emb = Embedding(5, 3, rng=0)
        emb(np.array([2])).sum().backward()
        grad = emb.weight.grad
        assert grad[2].sum() == 3.0
        np.testing.assert_array_equal(grad[[0, 1, 3, 4]], 0.0)

    def test_gaussian_init_scale(self):
        emb = Embedding(500, 16, std=0.01, rng=0)
        assert abs(emb.weight.data.std() - 0.01) < 0.002


class TestEmbeddingValidation:
    """The single-pass unsigned-view range check and its fallbacks."""

    def test_empty_ids_ok(self):
        emb = Embedding(5, 3, rng=0)
        out = emb(np.array([], dtype=np.int64))
        assert out.shape == (0, 3)

    def test_non_integer_ids_raise_typeerror(self):
        emb = Embedding(5, 3, rng=0)
        with pytest.raises(TypeError, match="must be integers"):
            emb(np.array([1.0, 2.0]))

    def test_error_message_reports_min_and_max(self):
        emb = Embedding(5, 3, rng=0)
        with pytest.raises(IndexError, match=r"min=-2, max=7"):
            emb(np.array([-2, 3, 7]))

    def test_boundary_ids_accepted(self):
        emb = Embedding(5, 3, rng=0)
        out = emb(np.array([0, 4]))
        np.testing.assert_array_equal(out.data, emb.weight.data[[0, 4]])

    def test_unsigned_dtype_ids(self):
        emb = Embedding(5, 3, rng=0)
        out = emb(np.array([1, 4], dtype=np.uint16))
        np.testing.assert_array_equal(out.data, emb.weight.data[[1, 4]])
        with pytest.raises(IndexError):
            emb(np.array([5], dtype=np.uint16))

    def test_narrow_dtype_oversized_table_falls_back(self):
        # num_embeddings (300) exceeds int8's unsigned-view range, so a
        # wrapped negative could alias into range; the two-pass fallback
        # must still reject it.
        emb = Embedding(300, 2, rng=0)
        ids = np.array([-1], dtype=np.int8)  # wraps to 255 < 300
        with pytest.raises(IndexError):
            emb(ids)
        out = emb(np.array([100], dtype=np.int8))
        np.testing.assert_array_equal(out.data, emb.weight.data[[100]])

    def test_non_contiguous_ids(self):
        emb = Embedding(10, 3, rng=0)
        ids = np.arange(10)[::2]
        out = emb(ids)
        np.testing.assert_array_equal(out.data, emb.weight.data[ids])
        with pytest.raises(IndexError):
            emb(np.array([0, 11, 2, 4])[1::2])  # non-contiguous, max=11

    def test_matches_two_pass_semantics(self):
        emb = Embedding(128, 2, rng=0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            ids = rng.integers(-5, 135, size=8)
            expected_bad = ids.min() < 0 or ids.max() >= 128
            if expected_bad:
                with pytest.raises(IndexError):
                    emb(ids)
            else:
                emb(ids)


class TestEmbeddingSparseGrad:
    def test_forward_identical_to_dense(self):
        ids = np.array([1, 3, 1])
        dense = Embedding(5, 3, rng=0)
        sparse = Embedding(5, 3, rng=0, sparse_grad=True)
        np.testing.assert_array_equal(dense(ids).data, sparse(ids).data)

    def test_backward_yields_sparse_row_grad(self):
        from repro.nn.sparse import SparseRowGrad

        emb = Embedding(5, 3, rng=0, sparse_grad=True)
        emb(np.array([2, 2, 4])).sum().backward()
        grad = emb.weight.grad
        assert isinstance(grad, SparseRowGrad)
        np.testing.assert_array_equal(grad.to_dense()[2], 2.0)
        np.testing.assert_array_equal(grad.to_dense()[4], 1.0)
        np.testing.assert_array_equal(grad.to_dense()[[0, 1, 3]], 0.0)


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_zero_rate_is_identity_in_train(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones((4, 4)))
        assert drop(x) is x

    def test_training_scales_survivors(self):
        drop = Dropout(0.5, rng=0)
        out = drop(Tensor(np.ones((100, 100)))).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        # roughly half survive
        assert 0.4 < (out > 0).mean() < 0.6

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestSequentialAndActivations:
    def test_applies_in_order(self):
        seq = Sequential(ReLU(), Sigmoid())
        out = seq(Tensor(np.array([-1.0, 0.0])))
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_len_and_getitem(self):
        seq = Sequential(ReLU(), Sigmoid())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)

    def test_train_eval_propagates(self):
        drop = Dropout(0.5, rng=0)
        seq = Sequential(Linear(2, 2, rng=0), drop)
        seq.eval()
        assert not drop.training
        seq.train()
        assert drop.training


class TestMLP:
    def test_output_is_flat_logits(self):
        mlp = MLP(6, [8, 4], rng=0)
        out = mlp(Tensor(np.zeros((5, 6))))
        assert out.shape == (5,)

    def test_depth_property(self):
        assert MLP(4, [8, 4, 2], rng=0).depth == 3

    def test_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            MLP(4, [])

    def test_parameter_count(self):
        mlp = MLP(4, [8], dropout=0.0, rng=0)
        # Linear(4,8): 32+8, head Linear(8,1): 8+1
        assert mlp.num_parameters() == 32 + 8 + 8 + 1

    def test_dropout_layers_inserted(self):
        mlp = MLP(4, [8, 8], dropout=0.2, rng=0)
        kinds = [type(s).__name__ for s in mlp.tower.steps]
        assert kinds.count("Dropout") == 2
