"""Module container tests: discovery, modes, state dicts."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Linear, Sequential
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(3, 2, rng=0)
        self.blocks = [Linear(2, 2, rng=1), Dropout(0.5, rng=2)]
        self.scale = Tensor(np.ones(1), requires_grad=True)
        self.buffer = Tensor(np.zeros(1))  # not trainable

    def forward(self, x):
        return self.blocks[0](self.linear(x)) * self.scale


class TestDiscovery:
    def test_named_parameters_include_nested_and_lists(self):
        names = {n for n, _ in Composite().named_parameters()}
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert "blocks.0.weight" in names
        assert "scale" in names
        assert "buffer" not in names  # requires_grad False

    def test_parameters_count(self):
        model = Composite()
        # linear 3*2+2, blocks.0 2*2+2, scale 1
        assert model.num_parameters() == 8 + 6 + 1

    def test_modules_walks_children(self):
        kinds = [type(m).__name__ for m in Composite().modules()]
        assert kinds.count("Linear") == 2
        assert "Dropout" in kinds


class TestModes:
    def test_train_eval_toggle_recursively(self):
        model = Composite()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Composite(), Composite()
        state = a.state_dict()
        b.load_state_dict(state)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        model = Composite()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0

    def test_missing_key_raises(self):
        model = Composite()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = Composite()
        state = model.state_dict()
        state["phantom"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Composite()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestZeroGradAndCall:
    def test_zero_grad_clears_all(self):
        model = Composite()
        out = model(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert model.linear.weight.grad is not None
        model.zero_grad()
        assert model.linear.weight.grad is None

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
