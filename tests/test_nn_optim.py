"""Optimizer tests: convergence, momentum, weight decay, validation."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def quadratic_loss(param: Tensor) -> Tensor:
    """Convex bowl with minimum at 3.0 per coordinate."""
    diff = param - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)
        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_solution(self):
        def run(weight_decay):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = SGD([p], lr=0.1, weight_decay=weight_decay)
            for _ in range(300):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return p.data[0]
        assert run(1.0) < run(0.0)

    def test_none_grad_skipped(self):
        p = Tensor(np.ones(2), requires_grad=True)
        SGD([p], lr=0.1).step()  # no backward yet: must not crash
        np.testing.assert_array_equal(p.data, 1.0)

    def test_validation(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(1))], lr=0.1)  # no requires_grad


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_bias_correction_first_step(self):
        # After one step with gradient g, Adam moves by ~lr * sign(g).
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(abs(p.data[0]), 0.1, rtol=1e-4)

    def test_invalid_betas(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam([p], betas=(0.9, -0.1))

    def test_weight_decay_pulls_toward_zero(self):
        p = Tensor(np.full(1, 5.0), requires_grad=True)
        opt = Adam([p], lr=0.05, weight_decay=10.0)
        for _ in range(200):
            opt.zero_grad()
            # loss that is flat: only decay acts
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_zero_grad_clears(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([p])
        quadratic_loss(p).backward()
        opt.zero_grad()
        assert p.grad is None


def quadratic_step(opt, p):
    opt.zero_grad()
    quadratic_loss(p).backward()
    opt.step()


class TestStateDict:
    def test_adam_round_trip_bit_identical(self):
        p1 = Tensor(np.array([3.0, -2.0]), requires_grad=True)
        opt1 = Adam([p1], lr=0.1)
        for _ in range(5):
            quadratic_step(opt1, p1)
        saved_state = opt1.state_dict()
        saved_params = p1.data.copy()
        quadratic_step(opt1, p1)
        expected = p1.data.copy()

        p2 = Tensor(saved_params.copy(), requires_grad=True)
        opt2 = Adam([p2], lr=0.1)
        opt2.load_state_dict(saved_state)
        quadratic_step(opt2, p2)
        np.testing.assert_array_equal(p2.data, expected)

    def test_adam_state_dict_copies(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([p])
        quadratic_step(opt, p)
        state = opt.state_dict()
        state["m"][0][...] = 99.0
        assert not np.any(opt._m[0] == 99.0)

    def test_adam_shape_mismatch_rejected(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([p])
        bad = {"step_count": 1, "m": [np.zeros(3)], "v": [np.zeros(2)]}
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(bad)

    def test_adam_count_mismatch_rejected(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([p])
        bad = {"step_count": 1, "m": [], "v": []}
        with pytest.raises(ValueError, match="expected 1 arrays"):
            opt.load_state_dict(bad)

    def test_sgd_velocity_round_trip(self):
        p1 = Tensor(np.array([2.0]), requires_grad=True)
        opt1 = SGD([p1], lr=0.1, momentum=0.9)
        for _ in range(3):
            quadratic_step(opt1, p1)
        saved_state = opt1.state_dict()
        saved_params = p1.data.copy()
        quadratic_step(opt1, p1)
        expected = p1.data.copy()

        p2 = Tensor(saved_params.copy(), requires_grad=True)
        opt2 = SGD([p2], lr=0.1, momentum=0.9)
        opt2.load_state_dict(saved_state)
        quadratic_step(opt2, p2)
        np.testing.assert_array_equal(p2.data, expected)
