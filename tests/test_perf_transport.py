"""Shared-memory gradient transport: layout, slot roundtrips, and the
bit-identity of the optimized (shm + sparse) trainer path with the
reference (pipe + dense) path — including under injected faults."""

import numpy as np
import pytest

from repro.nn.sparse import SparseRowGrad
from repro.parallel.data_parallel import DataParallelTrainer
from repro.perf.config import PerfConfig, enable_sparse_embedding_grads
from repro.perf.transport import (
    GradientLayout,
    ReadOnlyTransportError,
    ShmTransport,
    WorkerTransportClient,
)
from repro.reliability import Fault, FaultPlan

from tests.test_core_trainer import fast_config

SPECS = [
    ("emb.weight", (12, 4), "float64"),
    ("tower.weight", (4, 3), "float64"),
    ("tower.bias", (3,), "float64"),
]


class TestGradientLayout:
    def test_offsets_are_monotone_and_disjoint(self):
        layout = GradientLayout.build(SPECS)
        prev_end = 0
        for slot in layout.slots:
            assert slot.header_offset == prev_end
            assert slot.header_offset < slot.ids_offset \
                < slot.payload_offset < slot.end_offset
            prev_end = slot.end_offset
        assert layout.grad_nbytes == layout.slots[-1].end_offset

    def test_params_block_is_dense_concatenation(self):
        layout = GradientLayout.build(SPECS)
        expected = sum(int(np.prod(shape)) * 8 for _, shape, _ in SPECS)
        assert layout.params_nbytes == expected

    def test_row_capacity_and_dense_nbytes(self):
        layout = GradientLayout.build(SPECS)
        by_name = {s.name: s for s in layout.slots}
        assert by_name["emb.weight"].row_capacity == 12
        assert by_name["tower.bias"].row_capacity == 3
        assert by_name["emb.weight"].dense_nbytes == 12 * 4 * 8

    def test_layout_pickles_with_names(self):
        import pickle

        layout = GradientLayout.build(SPECS).with_names("p", ["g0", "g1"])
        back = pickle.loads(pickle.dumps(layout))
        assert back.params_name == "p"
        assert back.grad_names == ("g0", "g1")
        assert back.slots == layout.slots


class TestShmRoundtrip:
    def _grads(self, seed=0, sparse=False):
        rng = np.random.default_rng(seed)
        grads = {
            "emb.weight": rng.standard_normal((12, 4)),
            "tower.weight": rng.standard_normal((4, 3)),
            "tower.bias": rng.standard_normal(3),
        }
        if sparse:
            ids = np.array([3, 7, 3, 0])
            grads["emb.weight"] = SparseRowGrad(
                (12, 4), ids, rng.standard_normal((4, 4)))
        return grads

    def test_dense_roundtrip_bit_identical(self):
        with ShmTransport(SPECS, num_slots=1) as transport:
            client = WorkerTransportClient(transport.layout, 0)
            try:
                grads = self._grads()
                client.write_grads(grads)
                back = transport.read_grads(0)
            finally:
                client.close()
        for name in grads:
            np.testing.assert_array_equal(back[name], grads[name])

    def test_sparse_roundtrip_coalesces_bit_identically(self):
        with ShmTransport(SPECS, num_slots=1) as transport:
            client = WorkerTransportClient(transport.layout, 0)
            try:
                grads = self._grads(sparse=True)
                client.write_grads(grads)
                back = transport.read_grads(0)
            finally:
                client.close()
        emb = back["emb.weight"]
        assert isinstance(emb, SparseRowGrad)
        assert np.array_equal(emb.ids, np.unique([3, 7, 3, 0]))
        np.testing.assert_array_equal(emb.to_dense(),
                                      grads["emb.weight"].to_dense())

    def test_slots_are_independent(self):
        with ShmTransport(SPECS, num_slots=2) as transport:
            c0 = WorkerTransportClient(transport.layout, 0)
            c1 = WorkerTransportClient(transport.layout, 1)
            try:
                c0.write_grads(self._grads(seed=1))
                c1.write_grads(self._grads(seed=2, sparse=True))
                back0 = transport.read_grads(0)
                back1 = transport.read_grads(1)
            finally:
                c0.close()
                c1.close()
        np.testing.assert_array_equal(back0["emb.weight"],
                                      self._grads(seed=1)["emb.weight"])
        assert isinstance(back1["emb.weight"], SparseRowGrad)

    def test_params_broadcast_roundtrip(self):
        rng = np.random.default_rng(3)
        state = {name: rng.standard_normal(shape)
                 for name, shape, _ in SPECS}
        with ShmTransport(SPECS, num_slots=1) as transport:
            client = WorkerTransportClient(transport.layout, 0)
            try:
                transport.write_params(state)
                back = client.read_params()
            finally:
                client.close()
        for name in state:
            np.testing.assert_array_equal(back[name], state[name])

    def test_read_params_copies(self):
        state = {name: np.zeros(shape) for name, shape, _ in SPECS}
        with ShmTransport(SPECS, num_slots=1) as transport:
            client = WorkerTransportClient(transport.layout, 0)
            try:
                transport.write_params(state)
                first = client.read_params()
                transport.write_params(
                    {n: np.ones_like(v) for n, v in state.items()})
            finally:
                client.close()
            np.testing.assert_array_equal(first["emb.weight"], 0.0)

    def test_close_is_idempotent(self):
        transport = ShmTransport(SPECS, num_slots=1)
        transport.close()
        transport.close()

    def test_invalid_num_slots(self):
        with pytest.raises(ValueError):
            ShmTransport(SPECS, num_slots=-1)


class TestReadOnlyAttach:
    """Params-only blocks and read-only consumers (the serving fleet)."""

    def _state(self, seed=5):
        rng = np.random.default_rng(seed)
        return {name: rng.standard_normal(shape)
                for name, shape, _ in SPECS}

    def test_params_only_block_roundtrip(self):
        state = self._state()
        with ShmTransport(SPECS, num_slots=0) as transport:
            assert transport.num_slots == 0
            client = WorkerTransportClient(transport.layout,
                                           read_only=True)
            try:
                transport.write_params(state)
                back = client.read_params()
            finally:
                client.close()
        for name in state:
            np.testing.assert_array_equal(back[name], state[name])

    def test_read_only_client_rejects_grad_writes(self):
        with ShmTransport(SPECS, num_slots=0) as transport:
            client = WorkerTransportClient(transport.layout,
                                           read_only=True)
            try:
                with pytest.raises(ReadOnlyTransportError):
                    client.write_grads(
                        {name: np.zeros(shape)
                         for name, shape, _ in SPECS})
            finally:
                client.close()

    def test_read_only_views_are_not_writable(self):
        with ShmTransport(SPECS, num_slots=0) as transport:
            transport.write_params(self._state())
            client = WorkerTransportClient(transport.layout,
                                           read_only=True)
            try:
                view = client.read_params(copy=False)
                assert not view["emb.weight"].flags.writeable
                with pytest.raises(ValueError):
                    view["emb.weight"][0, 0] = 1.0
            finally:
                # Views alias the mapping; drop them before unmapping
                # so the in-process SharedMemory can close cleanly.
                del view
                client.close()

    def test_zero_copy_view_tracks_republished_params(self):
        state = self._state()
        with ShmTransport(SPECS, num_slots=0) as transport:
            transport.write_params(state)
            client = WorkerTransportClient(transport.layout,
                                           read_only=True)
            try:
                view = client.read_params(copy=False)
                transport.write_params(
                    {n: np.ones_like(v) for n, v in state.items()})
                np.testing.assert_array_equal(view["emb.weight"], 1.0)
            finally:
                del view
                client.close()

    def test_client_constructor_validation(self):
        layout = GradientLayout.build(SPECS)
        with pytest.raises(ValueError, match="slot"):
            WorkerTransportClient(layout, 0, read_only=True)
        with pytest.raises(ValueError, match="slot"):
            WorkerTransportClient(layout)

    def test_grad_slots_rejected_on_params_only_block(self):
        with ShmTransport(SPECS, num_slots=0) as transport:
            with pytest.raises(IndexError):
                transport.read_grads(0)


class TestPerfConfig:
    def test_defaults_are_optimized(self):
        perf = PerfConfig()
        assert perf.sparse_grads and perf.transport == "auto"
        assert perf.adam_sparse_mode == "exact"

    def test_reference_is_seed_behavior(self):
        perf = PerfConfig.reference()
        assert not perf.sparse_grads
        assert perf.transport == "pipe"
        assert perf.adam_sparse_mode == "dense"

    def test_validation(self):
        with pytest.raises(ValueError, match="transport"):
            PerfConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="adam_sparse_mode"):
            PerfConfig(adam_sparse_mode="bogus")

    def test_enable_sparse_embedding_grads_counts_tables(self):
        from repro.core.config import STTransRecConfig
        from repro.core.model import STTransRec

        model = STTransRec(num_users=5, num_pois=6, num_words=4,
                           config=STTransRecConfig(embedding_dim=4,
                                                   hidden_sizes=[4]))
        count = enable_sparse_embedding_grads(model)
        assert count >= 2        # at least user + poi tables
        from repro.nn.layers import Embedding
        assert all(m.sparse_grad for m in model.modules()
                   if isinstance(m, Embedding))


def _run(split, perf, workers=2, steps=6, fault_plan=None):
    """Losses + final parameters for one short training run."""
    trainer = DataParallelTrainer(split, fast_config(), num_workers=workers,
                                  fault_plan=fault_plan, perf=perf)
    try:
        losses = trainer.run_steps(steps)
        state = {k: v.copy()
                 for k, v in trainer.model.state_dict().items()}
        transport = trainer._transport
    finally:
        trainer.close()
    return losses, state, transport


def _assert_identical(run_a, run_b):
    losses_a, state_a, _ = run_a
    losses_b, state_b, _ = run_b
    np.testing.assert_array_equal(np.asarray(losses_a),
                                  np.asarray(losses_b))
    assert state_a.keys() == state_b.keys()
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])


class TestTrainerBitIdentity:
    """The acceptance contract: optimized path == reference path, bitwise."""

    def test_two_workers_shm_sparse_matches_pipe_dense(self, tiny_split):
        reference = _run(tiny_split, PerfConfig.reference())
        optimized = _run(tiny_split, PerfConfig(transport="shm"))
        assert optimized[2] is not None     # shm actually engaged
        _assert_identical(reference, optimized)

    def test_sparse_over_pipe_matches_dense(self, tiny_split):
        reference = _run(tiny_split, PerfConfig.reference())
        sparse_pipe = _run(tiny_split, PerfConfig(transport="pipe"))
        assert sparse_pipe[2] is None
        _assert_identical(reference, sparse_pipe)

    def test_single_process_sparse_matches_dense(self, tiny_split):
        reference = _run(tiny_split, PerfConfig.reference(), workers=1)
        optimized = _run(tiny_split, PerfConfig(), workers=1)
        _assert_identical(reference, optimized)

    def test_identical_under_crash_and_nan_faults(self, tiny_split):
        def plan():
            return FaultPlan([Fault.crash(worker=1, step=2),
                              Fault.nan_grad(worker=0, step=3)])

        reference = _run(tiny_split, PerfConfig.reference(),
                         fault_plan=plan(), steps=8)
        optimized = _run(tiny_split, PerfConfig(transport="shm"),
                         fault_plan=plan(), steps=8)
        assert optimized[2] is not None
        _assert_identical(reference, optimized)

    def test_auto_falls_back_to_pipe_when_shm_unavailable(
            self, tiny_split, monkeypatch):
        import repro.parallel.data_parallel as dp

        def boom(*args, **kwargs):
            raise OSError("no shared memory on this box")

        monkeypatch.setattr(dp, "ShmTransport", boom)
        auto = _run(tiny_split, PerfConfig(transport="auto"))
        assert auto[2] is None              # fell back
        reference = _run(tiny_split, PerfConfig.reference())
        _assert_identical(reference, auto)

    def test_explicit_shm_propagates_creation_failure(
            self, tiny_split, monkeypatch):
        import repro.parallel.data_parallel as dp

        def boom(*args, **kwargs):
            raise OSError("no shared memory on this box")

        monkeypatch.setattr(dp, "ShmTransport", boom)
        with pytest.raises(OSError):
            DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                perf=PerfConfig(transport="shm"))
