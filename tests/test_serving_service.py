"""RecommendationService tests: cache, fold-in invalidation, parity."""

import numpy as np
import pytest

from repro.core.checkpoint import save_checkpoint
from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec
from repro.core.recommend import Recommender
from repro.serving.service import RecommendationService


def make_model(index, seed=0):
    config = STTransRecConfig(embedding_dim=16, seed=seed)
    model = STTransRec(index.num_users, index.num_pois, index.num_words,
                       config)
    model.eval()
    return model


@pytest.fixture()
def world(tiny_split):
    dataset = tiny_split.train
    return dataset, dataset.build_index()


@pytest.fixture()
def service(world):
    dataset, index = world
    svc = RecommendationService(make_model(index), index, dataset,
                                "shelbyville", use_batcher=False)
    yield svc
    svc.close()


class TestRecommend:
    def test_matches_offline_recommender(self, world, service):
        dataset, index = world
        offline = Recommender(service.model, index, dataset, "shelbyville")
        for user_id in sorted(dataset.users)[:5]:
            served = service.recommend(user_id, k=5)
            expected = offline.recommend(user_id, k=5)
            assert [p for p, _ in served] == [p for p, _ in expected]
            np.testing.assert_allclose([s for _, s in served],
                                       [s for _, s in expected], atol=1e-9)

    def test_visited_pois_excluded(self, world, service):
        dataset, _index = world
        local = next(iter(dataset.users_in_city("shelbyville")))
        visited = {r.poi_id for r in dataset.user_profile(local)
                   if r.city == "shelbyville"}
        assert visited
        served = service.recommend(local, k=100)
        assert not ({p for p, _ in served} & visited)

    def test_unknown_user_raises(self, service):
        with pytest.raises(KeyError):
            service.recommend(10**9)

    def test_invalid_k(self, service):
        with pytest.raises(ValueError):
            service.recommend(0, k=0)

    def test_through_batcher(self, world):
        dataset, index = world
        model = make_model(index)
        with RecommendationService(model, index, dataset, "shelbyville",
                                   use_batcher=True,
                                   max_wait_ms=1.0) as svc:
            direct = RecommendationService(model, index, dataset,
                                           "shelbyville", use_batcher=False,
                                           cache_size=0)
            user = sorted(dataset.users)[0]
            assert svc.recommend(user, k=5) == direct.recommend(user, k=5)

    def test_recommend_many_matches_single(self, world, service):
        dataset, _index = world
        users = sorted(dataset.users)[:4]
        many = service.recommend_many(users, k=5)
        assert set(many) == set(users)
        for user_id in users:
            assert many[user_id] == service.recommend(user_id, k=5)

    def test_recommend_many_skips_unknown(self, world, service):
        dataset, _index = world
        users = sorted(dataset.users)[:2] + [10**9]
        many = service.recommend_many(users, k=3)
        assert set(many) == set(users[:2])


class TestCache:
    def test_second_request_is_a_hit(self, world, service):
        dataset, _index = world
        user = sorted(dataset.users)[0]
        first = service.recommend(user, k=5)
        assert service.cache.hits == 0
        second = service.recommend(user, k=5)
        assert service.cache.hits == 1
        assert first == second

    def test_cache_disabled(self, world):
        dataset, index = world
        with RecommendationService(make_model(index), index, dataset,
                                   "shelbyville", cache_size=0,
                                   use_batcher=False) as svc:
            assert svc.cache is None
            user = sorted(dataset.users)[0]
            assert svc.recommend(user, k=5) == svc.recommend(user, k=5)


class TestFoldIn:
    def test_fold_in_invalidates_only_that_user(self, world, service):
        dataset, _index = world
        user_a, user_b = sorted(dataset.users)[:2]
        before = service.recommend(user_a, k=5)
        service.recommend(user_b, k=5)
        new_poi = before[0][0]  # top recommendation becomes a check-in

        service.fold_in(user_a, [new_poi])

        hits_before = service.cache.hits
        misses_before = service.cache.misses
        after = service.recommend(user_a, k=5)
        # user_a's entry was invalidated: this request recomputed.
        assert service.cache.misses == misses_before + 1
        assert service.cache.hits == hits_before
        # The served list reflects the update: the folded-in check-in is
        # now an (excluded) visited POI, and the embedding moved.
        assert new_poi not in [p for p, _ in after]
        assert after != before

        # user_b's entry stayed cached.
        service.recommend(user_b, k=5)
        assert service.cache.hits == hits_before + 1

    def test_fold_in_updates_served_scores(self, world, service):
        dataset, _index = world
        user = sorted(dataset.users)[0]
        before = service.recommend(user, k=5, exclude_visited=False)
        service.fold_in(user, [before[1][0]])
        after = service.recommend(user, k=5, exclude_visited=False)
        assert not np.allclose([s for _, s in before],
                               [s for _, s in after])
        # Engine and model agree after the refresh.
        user_index = service.index.users.index_of(user)
        np.testing.assert_allclose(
            service.engine.score_catalogue([user_index])[0],
            service.model.score_pois_for_user(
                user_index, service.engine.catalogue_poi_indices),
            atol=1e-6)

    def test_fold_in_unknown_user_raises(self, service):
        with pytest.raises(KeyError):
            service.fold_in(10**9, [0])

    def test_refresh_model_drops_whole_cache(self, world, service):
        dataset, _index = world
        users = sorted(dataset.users)[:2]
        for u in users:
            service.recommend(u, k=5)
        assert len(service.cache) == 2
        service.refresh_model()
        assert len(service.cache) == 0


class TestFromCheckpointAndStats:
    def test_from_checkpoint(self, world, tmp_path):
        dataset, index = world
        model = make_model(index)
        path = tmp_path / "serve.npz"
        save_checkpoint(model, index, path)
        with RecommendationService.from_checkpoint(
                path, dataset, "shelbyville", use_batcher=False) as svc:
            offline = Recommender(model, index, dataset, "shelbyville")
            user = sorted(dataset.users)[0]
            served = svc.recommend(user, k=5)
            expected = offline.recommend(user, k=5)
            assert [p for p, _ in served] == [p for p, _ in expected]

    def test_stats_structure(self, world, service):
        dataset, _index = world
        user = sorted(dataset.users)[0]
        service.recommend(user, k=5)
        service.recommend(user, k=5)
        stats = service.stats()
        assert stats["requests"]["count"] == 2
        assert stats["cache_misses"]["count"] == 1
        assert stats["cache_hits"]["count"] == 1
        assert stats["cache"]["hit_rate"] == 0.5
        assert stats["engine"]["users_scored"] == 1
        assert stats["batcher"] is None
        assert stats["fold_ins"] == 0
