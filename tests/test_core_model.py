"""ST-TransRec network tests."""

import numpy as np
import pytest

from repro.core.config import STTransRecConfig
from repro.core.model import STTransRec


@pytest.fixture(scope="module")
def model():
    config = STTransRecConfig(embedding_dim=8, hidden_sizes=[8, 4], seed=0)
    return STTransRec(num_users=6, num_pois=10, num_words=12, config=config)


class TestForward:
    def test_logits_shape(self, model):
        logits = model.interaction_logits(np.array([0, 1]), np.array([2, 3]))
        assert logits.shape == (2,)

    def test_scores_in_unit_interval(self, model):
        scores = model.predict_scores(np.array([0, 1, 2]),
                                      np.array([0, 1, 2]))
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_predict_restores_training_mode(self, model):
        model.train()
        model.predict_scores(np.array([0]), np.array([0]))
        assert model.training
        model.eval()
        model.predict_scores(np.array([0]), np.array([0]))
        assert not model.training

    def test_score_pois_for_user(self, model):
        scores = model.score_pois_for_user(2, np.arange(10))
        assert scores.shape == (10,)

    def test_poi_bias_shifts_logits(self, model):
        model.eval()
        base = model.interaction_logits(np.array([0]), np.array([5])).item()
        model.poi_bias.weight.data[5, 0] += 3.0
        shifted = model.interaction_logits(np.array([0]), np.array([5])).item()
        np.testing.assert_allclose(shifted - base, 3.0, atol=1e-9)
        model.poi_bias.weight.data[5, 0] -= 3.0


class TestFeatureModes:
    def test_concat_vs_product_tower_width(self):
        concat_cfg = STTransRecConfig(embedding_dim=8,
                                      interaction_features="concat")
        prod_cfg = STTransRecConfig(embedding_dim=8,
                                    interaction_features="concat_product")
        m_concat = STTransRec(4, 4, 4, concat_cfg)
        m_prod = STTransRec(4, 4, 4, prod_cfg)
        assert m_concat.tower.tower[0].in_features == 16
        assert m_prod.tower.tower[0].in_features == 24

    def test_concat_mode_forward_works(self):
        cfg = STTransRecConfig(embedding_dim=8,
                               interaction_features="concat")
        m = STTransRec(4, 4, 4, cfg)
        assert m.interaction_logits(np.array([0]), np.array([1])).shape == (1,)


class TestEmbeddingAccess:
    def test_poi_vectors_copy(self, model):
        vectors = model.poi_vectors()
        vectors[0, 0] = 999.0
        assert model.poi_embeddings.weight.data[0, 0] != 999.0

    def test_poi_embedding_batch_in_graph(self, model):
        batch = model.poi_embedding_batch(np.array([0, 1]))
        assert batch.requires_grad

    def test_deterministic_init_per_seed(self):
        cfg = STTransRecConfig(embedding_dim=8, seed=5)
        a = STTransRec(4, 4, 4, cfg)
        b = STTransRec(4, 4, 4, cfg)
        np.testing.assert_array_equal(a.poi_embeddings.weight.data,
                                      b.poi_embeddings.weight.data)

    def test_repr(self, model):
        assert "STTransRec" in repr(model)
