"""Failure-path tests: supervised replicas, fault injection, resume.

Every fault is injected deterministically via a FaultPlan pinned to an
exact (worker, step) coordinate, so these tests exercise real process
death and hangs without flakiness.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.checkpoint import load_training_checkpoint, save_checkpoint
from repro.parallel import (
    DataParallelTrainer,
    SupervisionConfig,
    WorkerFailure,
)
from repro.reliability import Fault, FaultPlan, TrainingDiverged

from tests.test_core_trainer import fast_config

FAST_SUPERVISION = SupervisionConfig(step_timeout=30.0, max_respawns=2,
                                     respawn_backoff=0.01)


def _no_leaked_children(before):
    new = [p for p in mp.active_children() if p not in before]
    return all(not p.is_alive() for p in new)


class TestCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_epoch_completes(
            self, tiny_split):
        plan = FaultPlan([Fault.crash(worker=1, step=1)])
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan,
                                 supervision=FAST_SUPERVISION) as dp:
            baseline = DataParallelTrainer(tiny_split, fast_config(),
                                           num_workers=2)
            expected_steps = baseline.train_epoch().steps
            baseline.close()
            stats = dp.train_epoch()
        assert stats.steps == expected_steps     # full example count
        assert stats.faults.crashes == 1
        assert stats.faults.respawns == 1
        assert np.isfinite(stats.mean_loss)

    def test_replica_count_restored_after_respawn(self, tiny_split):
        plan = FaultPlan([Fault.crash(worker=0, step=0)])
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan,
                                 supervision=FAST_SUPERVISION) as dp:
            dp.train_epoch()
            assert dp._supervisor.num_live == 2

    def test_budget_exhaustion_degrades_to_fewer_replicas(self, tiny_split):
        plan = FaultPlan([Fault.crash(worker=1, step=1)])
        supervision = SupervisionConfig(step_timeout=30.0, max_respawns=0,
                                        respawn_backoff=0.0)
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan,
                                 supervision=supervision) as dp:
            stats = dp.train_epoch()
            assert dp._supervisor.num_live == 1
        assert stats.faults.removals == 1
        assert stats.faults.respawns == 0
        assert np.isfinite(stats.mean_loss)

    def test_total_replica_loss_raises_worker_failure(self, tiny_split):
        before = mp.active_children()
        plan = FaultPlan([Fault.crash(worker=0, step=0),
                          Fault.crash(worker=1, step=0)])
        supervision = SupervisionConfig(step_timeout=30.0, max_respawns=0)
        dp = DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan, supervision=supervision)
        with pytest.raises(WorkerFailure) as excinfo:
            dp.train_epoch()
        assert "step 0" in str(excinfo.value)
        assert dp._supervisor.num_live == 0
        assert _no_leaked_children(before)


class TestHangRecovery:
    def test_hung_worker_is_killed_and_respawned(self, tiny_split):
        plan = FaultPlan([Fault.hang(worker=1, step=1, seconds=15.0)])
        supervision = SupervisionConfig(step_timeout=0.75, max_respawns=2,
                                        respawn_backoff=0.01)
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan,
                                 supervision=supervision) as dp:
            stats = dp.train_epoch()
            assert dp._supervisor.num_live == 2
        assert stats.faults.hangs == 1
        assert stats.faults.respawns == 1
        assert np.isfinite(stats.mean_loss)

    def test_slow_worker_within_timeout_is_not_killed(self, tiny_split):
        plan = FaultPlan([Fault.delay(worker=1, step=1, seconds=0.2)])
        supervision = SupervisionConfig(step_timeout=10.0, max_respawns=2)
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan,
                                 supervision=supervision) as dp:
            stats = dp.train_epoch()
        assert stats.faults.total_faults == 0


class TestNaNGuard:
    def test_multi_worker_nan_contribution_dropped(self, tiny_split):
        plan = FaultPlan([Fault.nan_grad(worker=0, step=1)])
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan,
                                 supervision=FAST_SUPERVISION) as dp:
            stats = dp.train_epoch()
        assert stats.faults.nonfinite_contributions == 1
        assert stats.faults.skipped_steps == 0   # the other replica carried
        assert np.isfinite(stats.mean_loss)
        for param in dp.model.parameters():
            assert np.all(np.isfinite(param.data))

    def test_single_worker_nan_step_skipped_and_counted(self, tiny_split):
        plan = FaultPlan([Fault.nan_grad(worker=0, step=2)])
        with DataParallelTrainer(tiny_split, fast_config(),
                                 num_workers=1, fault_plan=plan) as dp:
            stats = dp.train_epoch()
        assert stats.faults.skipped_steps == 1
        assert stats.faults.nonfinite_contributions == 1
        assert np.isfinite(stats.mean_loss)
        for param in dp.model.parameters():
            assert np.all(np.isfinite(param.data))


class TestResume:
    def test_resume_is_bit_identical_single_worker(self, tiny_split,
                                                   tmp_path):
        config = fast_config(dropout=0.3)   # dropout must also be neutral
        ckpt = tmp_path / "resume.npz"

        with DataParallelTrainer(tiny_split, config) as reference:
            reference.train(epochs=4)
        with DataParallelTrainer(tiny_split, config) as interrupted:
            interrupted.train(epochs=2, checkpoint_every=2,
                              checkpoint_path=ckpt)
        with DataParallelTrainer(tiny_split, config) as resumed:
            history = resumed.train(epochs=4, resume_from=ckpt)

        assert len(history) == 2            # only the remaining epochs
        for (name, a), (_n, b) in zip(
                reference.model.named_parameters(),
                resumed.model.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

    def test_resume_multi_worker_continues(self, tiny_split, tmp_path):
        ckpt = tmp_path / "mw.npz"
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 supervision=FAST_SUPERVISION) as first:
            first.train(epochs=1, checkpoint_every=1, checkpoint_path=ckpt)
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 supervision=FAST_SUPERVISION) as second:
            history = second.train(epochs=2, resume_from=ckpt)
        assert len(history) == 1
        assert np.isfinite(history[0].mean_loss)

    def test_checkpoint_carries_training_state(self, tiny_split, tmp_path):
        ckpt = tmp_path / "state.npz"
        with DataParallelTrainer(tiny_split, fast_config()) as dp:
            dp.train(epochs=2, checkpoint_every=2, checkpoint_path=ckpt)
            expected_step = dp._global_step
        _model, _index, state = load_training_checkpoint(ckpt)
        assert state is not None
        assert state.epochs_completed == 2
        assert state.global_step == expected_step
        assert state.optimizer_state["step_count"] > 0
        assert len(state.optimizer_state["m"]) == \
            len(state.optimizer_state["v"]) > 0
        assert state.rng_state is not None

    def test_v1_checkpoint_refuses_resume(self, tiny_split, tmp_path):
        ckpt = tmp_path / "v1.npz"
        with DataParallelTrainer(tiny_split, fast_config()) as dp:
            save_checkpoint(dp.model, dp._master.index, ckpt)  # v1: no state
            with pytest.raises(ValueError, match="v1 checkpoint"):
                dp.train(epochs=1, resume_from=ckpt)

    def test_config_mismatch_refuses_resume(self, tiny_split, tmp_path):
        ckpt = tmp_path / "cfg.npz"
        with DataParallelTrainer(tiny_split, fast_config(seed=0)) as dp:
            dp.train(epochs=1, checkpoint_every=1, checkpoint_path=ckpt)
        with DataParallelTrainer(tiny_split, fast_config(seed=7)) as other:
            with pytest.raises(ValueError, match="does not match"):
                other.train(epochs=2, resume_from=ckpt)

    def test_checkpoint_every_requires_path(self, tiny_split):
        with DataParallelTrainer(tiny_split, fast_config()) as dp:
            with pytest.raises(ValueError, match="checkpoint_path"):
                dp.train(epochs=1, checkpoint_every=1)


class TestDivergenceHook:
    def test_tripped_detector_raises_and_closes(self, tiny_split):
        class AlwaysDiverged:
            best = 0.0

            def update(self, loss):
                return True

        dp = DataParallelTrainer(tiny_split, fast_config())
        with pytest.raises(TrainingDiverged):
            dp.train(epochs=2, divergence_detector=AlwaysDiverged())
