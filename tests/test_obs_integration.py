"""Telemetry wired end to end: trainer, parallel workers, serving, CLI.

The cross-process contract under test: every worker reply carries a
cumulative registry snapshot, the master keeps the latest snapshot per
``(worker, incarnation)``, and merging at read time therefore preserves
the final state of replicas that crashed or were removed mid-run.
"""

import json

import numpy as np
import pytest

from repro.core.trainer import STTransRecTrainer
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import EVENTS_FILE, PROM_FILE, Telemetry
from repro.parallel import DataParallelTrainer, SupervisionConfig
from repro.reliability import Fault, FaultPlan
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import TopKCache
from repro.serving.service import LatencyTracker, RecommendationService

from tests.test_core_trainer import fast_config
from tests.test_serving_service import make_model

FAST_SUPERVISION = SupervisionConfig(step_timeout=30.0, max_respawns=2,
                                     respawn_backoff=0.01)


class TestTrainerTelemetry:
    def test_fit_records_metrics_and_spans(self, tiny_split):
        telemetry = Telemetry()
        trainer = STTransRecTrainer(tiny_split, fast_config(epochs=2),
                                    telemetry=telemetry)
        trainer.fit()
        registry = telemetry.registry
        assert registry.counter("train.epochs").value == 2
        loss = registry.gauge("train.epoch.loss", component="total")
        assert np.isfinite(loss.value)
        assert registry.histogram("train.loss.total").count > 0
        fit = telemetry.tracer.root.children["fit"]
        assert fit.children["epoch"].count == 2
        assert "interaction" in fit.children["epoch"].children

    def test_per_component_step_counters_agree(self, tiny_split):
        telemetry = Telemetry()
        trainer = STTransRecTrainer(tiny_split, fast_config(epochs=1),
                                    telemetry=telemetry)
        trainer.fit()
        interaction = telemetry.registry.counter(
            "train.steps", component="interaction_source").value
        assert interaction > 0

    def test_disabled_telemetry_changes_nothing(self, tiny_split):
        with_tel = STTransRecTrainer(tiny_split, fast_config(epochs=1),
                                     telemetry=Telemetry())
        without = STTransRecTrainer(tiny_split, fast_config(epochs=1))
        with_tel.fit()
        without.fit()
        for (name, a), (_n, b) in zip(
                with_tel.model.named_parameters(),
                without.model.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)


class TestParallelTelemetry:
    def test_per_worker_histograms_reach_the_master(self, tiny_split):
        telemetry = Telemetry()
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 telemetry=telemetry) as dp:
            stats = dp.train_epoch()
            merged = dp.merged_metrics()
        assert len(dp.worker_registries()) == 2
        for worker in ("0", "1"):
            hist = merged.get("worker.step_time_ms", worker=worker)
            assert hist is not None
            assert hist.count == stats.steps
            counter = merged.get("worker.steps", worker=worker)
            assert counter.value == stats.steps
        assert merged.counter("faults.crashes").value == 0
        assert merged.counter("train.epochs").value == 1

    def test_merge_order_is_irrelevant(self, tiny_split):
        telemetry = Telemetry()
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 telemetry=telemetry) as dp:
            dp.train_epoch()
            regs = dp.worker_registries()
        ab = regs[0].merged_with(regs[1])
        ba = regs[1].merged_with(regs[0])
        assert ab.to_dict() == ba.to_dict()

    def test_degraded_worker_final_registry_is_retained(self, tiny_split):
        # Worker 1 crashes at step 1 with no respawn budget: it is
        # removed mid-epoch, but the snapshot shipped with its last
        # successful reply must survive to the master's aggregate.
        plan = FaultPlan([Fault.crash(worker=1, step=1)])
        supervision = SupervisionConfig(step_timeout=30.0, max_respawns=0,
                                        respawn_backoff=0.0)
        telemetry = Telemetry()
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan, supervision=supervision,
                                 telemetry=telemetry) as dp:
            stats = dp.train_epoch()
            merged = dp.merged_metrics()
        assert stats.faults.removals == 1
        dead = merged.get("worker.step_time_ms", worker="1")
        assert dead is not None and dead.count >= 1
        # The survivor kept stepping, so its series is strictly longer.
        alive = merged.get("worker.step_time_ms", worker="0")
        assert alive.count > dead.count
        assert merged.counter("faults.crashes").value == 1
        assert merged.counter("faults.removals").value == 1

    def test_respawned_worker_snapshots_do_not_collide(self, tiny_split):
        # A respawned replica reuses the worker id but has a fresh
        # incarnation, so both registries count (the pre-crash steps
        # and the post-respawn steps sum, not overwrite).
        plan = FaultPlan([Fault.crash(worker=1, step=1)])
        telemetry = Telemetry()
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=2,
                                 fault_plan=plan,
                                 supervision=FAST_SUPERVISION,
                                 telemetry=telemetry) as dp:
            stats = dp.train_epoch()
            merged = dp.merged_metrics()
            snapshots = len(dp.worker_registries())
        assert stats.faults.respawns == 1
        assert snapshots == 3  # worker 0, worker 1 pre- and post-crash
        total = sum(m.value for key, m in merged.items()
                    if key.startswith("worker.steps"))
        # Replies from the crashed step are lost, never double counted.
        assert total <= 2 * stats.steps

    def test_single_process_path_records_step_metrics(self, tiny_split):
        telemetry = Telemetry()
        with DataParallelTrainer(tiny_split, fast_config(), num_workers=1,
                                 telemetry=telemetry) as dp:
            stats = dp.train_epoch()
        hist = telemetry.registry.get("worker.step_time_ms", worker="0")
        assert hist.count == stats.steps


class TestServingTelemetry:
    def test_latency_histograms_are_shared_with_registry(self, tiny_split):
        dataset = tiny_split.train
        index = dataset.build_index()
        registry = MetricsRegistry()
        with RecommendationService(make_model(index), index, dataset,
                                   "shelbyville", use_batcher=False,
                                   registry=registry) as service:
            user = sorted(dataset.users)[0]
            service.recommend(user, k=5)   # miss
            service.recommend(user, k=5)   # hit
        assert registry.histogram("serving.request_latency_ms").count == 2
        assert registry.histogram("serving.miss_latency_ms").count == 1
        assert registry.histogram("serving.hit_latency_ms").count == 1
        # The service's own stats read the same instruments.
        assert service.request_latency.count == 2
        assert registry.counter("serving.cache.hits").value == 1
        assert registry.counter("serving.cache.misses").value == 1
        assert registry.gauge("serving.cache.hit_rate").value == 0.5

    def test_fold_in_counter(self, tiny_split):
        dataset = tiny_split.train
        index = dataset.build_index()
        registry = MetricsRegistry()
        with RecommendationService(make_model(index), index, dataset,
                                   "shelbyville", use_batcher=False,
                                   registry=registry) as service:
            user = sorted(dataset.users)[0]
            pois = [r.poi_id for r in dataset.user_profile(user)][:2]
            service.fold_in(user, pois)
        assert registry.counter("serving.fold_ins").value == 1

    def test_cache_metrics_standalone(self):
        registry = MetricsRegistry()
        cache = TopKCache(max_size=2, registry=registry)
        cache.get(1, 5)
        cache.put(1, 5, ["x"])
        cache.get(1, 5)
        cache.put(2, 5, ["y"])
        cache.put(3, 5, ["z"])        # evicts user 1
        cache.invalidate(2)
        assert registry.counter("serving.cache.misses").value == 1
        assert registry.counter("serving.cache.hits").value == 1
        assert registry.counter("serving.cache.evictions").value == 1
        assert registry.counter("serving.cache.invalidations").value == 1
        assert registry.gauge("serving.cache.size").value == 1
        # Plain attributes keep working for existing callers.
        assert cache.hits == 1 and cache.evictions == 1

    def test_batcher_occupancy_histogram(self):
        registry = MetricsRegistry()
        with MicroBatcher(lambda reqs: [r * 2 for r in reqs],
                          max_batch_size=4, max_wait_ms=20.0,
                          registry=registry) as batcher:
            futures = [batcher.submit(i) for i in range(3)]
            assert [f.result(timeout=5.0) for f in futures] == [0, 2, 4]
        assert registry.counter("serving.batch.requests").value == 3
        occupancy = registry.histogram("serving.batch.occupancy")
        assert occupancy.count == registry.counter(
            "serving.batch.batches").value
        assert occupancy.total == pytest.approx(3)


class TestLatencyTrackerDriftFix:
    def test_summary_keys_are_backward_compatible(self):
        tracker = LatencyTracker()
        tracker.record(2.0)
        summary = tracker.summary()
        for key in ("count", "mean_ms", "p50_ms", "p95_ms"):
            assert key in summary
        for key in ("lifetime_mean_ms", "window_mean_ms", "window_count"):
            assert key in summary

    def test_lifetime_and_window_means_reported_separately(self):
        tracker = LatencyTracker(window=2)
        tracker.record(1000.0)     # rolls out of the window
        tracker.record(1.0)
        tracker.record(3.0)
        summary = tracker.summary()
        assert summary["mean_ms"] == pytest.approx(1004.0 / 3)
        assert summary["lifetime_mean_ms"] == summary["mean_ms"]
        assert summary["window_mean_ms"] == pytest.approx(2.0)
        assert summary["window_count"] == 2
        assert summary["count"] == 3
        # Percentiles come from the same window the window mean does.
        assert summary["p95_ms"] <= 3.0

    def test_legacy_attributes_still_exist(self):
        tracker = LatencyTracker()
        tracker.record(5.0)
        assert tracker.count == 1
        assert tracker.total_ms == pytest.approx(5.0)
        assert tracker.samples_ms == [5.0]
        assert tracker.mean_ms == pytest.approx(5.0)


class TestCliTelemetry:
    def _generate(self, tmp_path):
        from repro.cli import main

        data = tmp_path / "data.jsonl"
        main(["generate", "--preset", "foursquare", "--out", str(data),
              "--scale", "0.15"])
        return data

    def test_train_writes_telemetry_and_report_reads_it(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        data = self._generate(tmp_path)
        tel_dir = tmp_path / "tel"
        code = main(["train", "--data", str(data),
                     "--target", "los_angeles",
                     "--embedding-dim", "8", "--epochs", "1",
                     "--pretrain-epochs", "1",
                     "--telemetry-dir", str(tel_dir)])
        assert code == 0
        assert (tel_dir / EVENTS_FILE).exists()
        assert "train_epochs" in (tel_dir / PROM_FILE).read_text()
        capsys.readouterr()

        code = main(["metrics-report", "--telemetry-dir", str(tel_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "train.epochs" in out
        assert "telemetry report" in out

    def test_parallel_train_exports_worker_series(self, tmp_path, capsys):
        from repro.cli import main

        data = self._generate(tmp_path)
        tel_dir = tmp_path / "tel"
        code = main(["train", "--data", str(data),
                     "--target", "los_angeles",
                     "--embedding-dim", "8", "--epochs", "1",
                     "--pretrain-epochs", "1", "--workers", "2",
                     "--telemetry-dir", str(tel_dir)])
        assert code == 0
        prom = (tel_dir / PROM_FILE).read_text()
        assert 'worker_step_time_ms_bucket{worker="0"' in prom
        assert 'worker_step_time_ms_bucket{worker="1"' in prom
        assert "faults_crashes 0.0" in prom
        capsys.readouterr()

    def test_metrics_report_missing_dir_fails(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["metrics-report",
                     "--telemetry-dir", str(tmp_path / "nope")])
        assert code == 1

    def test_quiet_suppresses_progress_not_reports(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "data.jsonl"
        code = main(["--quiet", "generate", "--preset", "foursquare",
                     "--out", str(out_path), "--scale", "0.15"])
        assert code == 0
        captured = capsys.readouterr()
        assert "#Check-ins" in captured.out      # report: still there
        assert "wrote" not in captured.err       # progress: silenced

    def test_profile_ops_prints_table(self, tmp_path, capsys):
        from repro.cli import main

        data = self._generate(tmp_path)
        tel_dir = tmp_path / "tel"
        code = main(["train", "--data", str(data),
                     "--target", "los_angeles",
                     "--embedding-dim", "8", "--epochs", "1",
                     "--pretrain-epochs", "1", "--profile-ops",
                     "--telemetry-dir", str(tel_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "autograd op profile" in out
        assert (tel_dir / "op_profile.txt").exists()
        assert "nn_op_calls" in (tel_dir / PROM_FILE).read_text()

    def test_model_meta_unchanged_by_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        data = self._generate(tmp_path)
        model = tmp_path / "model.npz"
        code = main(["train", "--data", str(data),
                     "--target", "los_angeles",
                     "--embedding-dim", "8", "--epochs", "1",
                     "--pretrain-epochs", "1",
                     "--model-out", str(model),
                     "--telemetry-dir", str(tmp_path / "tel")])
        assert code == 0
        meta = json.loads((tmp_path / "model.npz.json").read_text())
        assert meta["target_city"] == "los_angeles"
