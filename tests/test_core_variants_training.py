"""Variant semantics verified through actual training behaviour."""

import numpy as np
import pytest

from repro.baselines.st_transrec_method import STTransRecMethod
from repro.core.config import STTransRecConfig
from repro.core.trainer import STTransRecTrainer

from tests.test_core_trainer import fast_config


class TestVariantTrainingBehaviour:
    def test_variant_1_never_computes_mmd(self, tiny_split):
        method = STTransRecMethod(fast_config(), variant="ST-TransRec-1")
        method.fit(tiny_split)
        history = method.train_result.history
        assert all(stats.mmd == 0.0 for stats in history)

    def test_variant_2_has_no_context_loss(self, tiny_split):
        method = STTransRecMethod(fast_config(), variant="ST-TransRec-2")
        method.fit(tiny_split)
        history = method.train_result.history
        assert all(stats.context_source == 0.0 for stats in history)
        assert all(stats.context_target == 0.0 for stats in history)

    def test_variant_3_pool_smaller_than_full(self, tiny_split):
        full = STTransRecTrainer(tiny_split,
                                 fast_config(resample_alpha=1.0))
        ablated = STTransRecTrainer(tiny_split,
                                    fast_config(resample_alpha=0.0))
        # Same raw check-ins; the full model's pool adds resampled draws
        # when any region has a deficit.
        assert len(ablated.target_mmd_pool) <= len(full.target_mmd_pool)

    def test_variants_share_everything_else(self, tiny_split):
        """Variants must differ ONLY in their ablated component: with the
        same seed their initial parameters are identical."""
        full = STTransRecMethod(fast_config())
        no_mmd = STTransRecMethod(fast_config(), variant="ST-TransRec-1")
        trainer_a = STTransRecTrainer(tiny_split, full.config)
        trainer_b = STTransRecTrainer(tiny_split, no_mmd.config)
        np.testing.assert_array_equal(
            trainer_a.model.poi_embeddings.weight.data,
            trainer_b.model.poi_embeddings.weight.data,
        )

    def test_train_result_exposed(self, tiny_split):
        method = STTransRecMethod(fast_config())
        assert method.train_result is None
        method.fit(tiny_split)
        assert method.train_result.epochs == method.config.epochs

    def test_recommender_requires_fit(self):
        method = STTransRecMethod(fast_config())
        with pytest.raises(RuntimeError):
            method.recommender
