"""Legacy setup shim so ``pip install -e .`` works without network access.

The offline environment lacks the ``wheel`` package required by PEP 660
editable builds; this shim lets pip fall back to ``setup.py develop``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
