"""Plan a crossing-city trip: interpretable recommendations for travellers.

Run:
    python examples/crossing_city_trip.py

The scenario the paper's introduction motivates: users with check-in
history in their home cities travel to Los Angeles for the first time.
For three travellers with different tastes this example prints their
observable preferences (top words at home) next to the model's LA
itinerary, flagging the POIs they actually went on to visit — the Table
3 case-study layout, for several users.
"""

import argparse

from repro.baselines import FOURSQUARE_PROFILE, STTransRecMethod
from repro.data import foursquare_like, generate_dataset, make_crossing_city_split
from repro.eval.case_study import build_case_study


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (default 0.5)")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--pretrain-epochs", type=int, default=None,
                        help="override the profile's pretrain epochs")
    parser.add_argument("--embedding-dim", type=int, default=None,
                        help="override the profile's embedding size")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = foursquare_like(scale=args.scale)
    dataset, _ = generate_dataset(config)
    split = make_crossing_city_split(dataset, config.target_city)

    overrides = {"epochs": args.epochs}
    if args.pretrain_epochs is not None:
        overrides["pretrain_epochs"] = args.pretrain_epochs
    if args.embedding_dim is not None:
        overrides["embedding_dim"] = args.embedding_dim

    print("Training ST-TransRec on the travellers' home-city history...")
    method = STTransRecMethod(
        FOURSQUARE_PROFILE.st_transrec_config(**overrides))
    method.fit(split)
    recommender = method.recommender

    # Pick three travellers with the richest evaluation signal.
    travellers = sorted(
        split.test_users,
        key=lambda u: len(split.ground_truth.get(u, ())),
        reverse=True,
    )[:3]

    for user in travellers:
        study = build_case_study(
            split, {"ST-TransRec": recommender}, user_id=user,
            top_k=5, top_words=8,
        )
        print("\n" + "=" * 64)
        print(study.format())


if __name__ == "__main__":
    main()
