"""Watch the transfer layer close the city gap.

Run:
    python examples/transfer_visualization.py

Trains ST-TransRec with and without the MMD transfer term and reports,
for each, (a) the final MMD between source- and target-city POI
embedding distributions and (b) how well POIs of the same latent topic
align *across* cities (mean cosine of same-topic vs different-topic
cross-city centroids).  The MMD-trained model should show a smaller
distribution gap and a wider same-vs-different margin — the
city-independent features of Fig. 1a.
"""

import numpy as np

from repro.core import STTransRecConfig, STTransRecTrainer
from repro.data import foursquare_like, generate_dataset, make_crossing_city_split
from repro.transfer import GaussianKernel, mmd_quadratic


def topic_alignment(trainer, dataset, target_city, num_topics):
    """(same-topic, different-topic) mean cross-city centroid cosines."""
    emb = trainer.model.poi_vectors()
    emb = emb / np.maximum(np.linalg.norm(emb, axis=1, keepdims=True), 1e-12)
    centroids = {}
    for poi in dataset.pois.values():
        key = (poi.city == target_city, poi.topic)
        centroids.setdefault(key, []).append(
            emb[trainer.index.pois.index_of(poi.poi_id)]
        )
    centroids = {k: np.mean(v, axis=0) for k, v in centroids.items()}

    def cosine(a, b):
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

    same, different = [], []
    for topic in range(num_topics):
        if (True, topic) not in centroids or (False, topic) not in centroids:
            continue
        same.append(cosine(centroids[(True, topic)],
                           centroids[(False, topic)]))
        for other in range(num_topics):
            if other != topic and (False, other) in centroids:
                different.append(cosine(centroids[(True, topic)],
                                        centroids[(False, other)]))
    return float(np.mean(same)), float(np.mean(different))


def final_mmd(trainer):
    emb = trainer.model.poi_embeddings.weight
    rng = np.random.default_rng(0)
    src = rng.choice(trainer.source_mmd_pool, size=256)
    tgt = rng.choice(trainer.target_mmd_pool, size=256)
    kernel = GaussianKernel(trainer._kernel.bandwidth)
    return mmd_quadratic(emb.data[src], emb.data[tgt], kernel).item()


def main() -> None:
    config = foursquare_like(scale=0.5)
    dataset, _ = generate_dataset(config)
    split = make_crossing_city_split(dataset, config.target_city)

    for label, use_mmd in (("with MMD transfer", True),
                           ("without MMD (ST-TransRec-1)", False)):
        model_config = STTransRecConfig(
            embedding_dim=32, epochs=8, weight_decay=3e-4, dropout=0.3,
            pretrain_epochs=10, use_mmd=use_mmd, seed=0,
        )
        trainer = STTransRecTrainer(split, model_config)
        trainer.fit()
        gap = final_mmd(trainer)
        same, different = topic_alignment(
            trainer, dataset, config.target_city, config.num_topics
        )
        print(f"{label}:")
        print(f"  source↔target embedding MMD²: {gap:.4f}")
        print(f"  cross-city same-topic cosine: {same:.3f}")
        print(f"  cross-city diff-topic cosine: {different:.3f}")
        print(f"  alignment margin:             {same - different:.3f}\n")


if __name__ == "__main__":
    main()
