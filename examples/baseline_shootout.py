"""Baseline shoot-out: compare several methods on one synthetic dataset.

Run:
    python examples/baseline_shootout.py [--full]

Fits a selection of the paper's comparison methods (all nine with
``--full``) on a Yelp-like dataset and prints a Figure-4-style table.
"""

import argparse
import dataclasses
import time

from repro.baselines import METHOD_NAMES, YELP_PROFILE, make_method
from repro.data import generate_dataset, make_crossing_city_split, yelp_like
from repro.eval import RankingEvaluator
from repro.eval.reporting import format_comparison

QUICK_METHODS = ["ItemPop", "CRCF", "CTLM", "SH-CDL", "ST-TransRec"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run all nine methods (slower)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor")
    args = parser.parse_args()

    config = yelp_like(scale=args.scale)
    dataset, _ = generate_dataset(config)
    split = make_crossing_city_split(dataset, config.target_city)
    evaluator = RankingEvaluator(split, seed=42)
    methods = METHOD_NAMES if args.full else QUICK_METHODS

    print(f"Dataset: Yelp-like at scale {args.scale} — "
          f"{len(evaluator.evaluable_users)} test users "
          f"(target city: {config.target_city})\n")

    results = {}
    for name in methods:
        profile = dataclasses.replace(YELP_PROFILE, seed=0)
        started = time.perf_counter()
        method = make_method(name, profile).fit(split)
        elapsed = time.perf_counter() - started
        results[name] = evaluator.evaluate(method).scores
        print(f"fitted {name:<12} in {elapsed:5.1f}s  "
              f"(recall@10 = {results[name]['recall'][10]:.3f})")

    print("\n" + format_comparison(results, metric="recall"))
    print()
    print(format_comparison(results, metric="ndcg"))


if __name__ == "__main__":
    main()
