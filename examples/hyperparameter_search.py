"""Grid-search ST-TransRec hyper-parameters, paper style.

Run:
    python examples/hyperparameter_search.py

Section 4.1 tunes by grid search (learning rate over six values; the
resampling rate and segmentation threshold over small grids).  This
example reproduces that workflow on a small synthetic dataset and prints
the ranked grid.
"""

from repro.core import STTransRecConfig
from repro.data import foursquare_like, generate_dataset, make_crossing_city_split
from repro.eval import grid_search


def main() -> None:
    config = foursquare_like(scale=0.4)
    dataset, _ = generate_dataset(config)
    split = make_crossing_city_split(dataset, config.target_city)

    base = STTransRecConfig(
        embedding_dim=16,
        epochs=6,
        weight_decay=3e-4, dropout=0.3,
        pretrain_epochs=8,
        mmd_batch_size=64,
        seed=0,
    )
    grid = {
        "resample_alpha": [0.0, 0.10],
        "lambda_mmd": [0.5, 1.0],
    }
    print(f"searching {2 * 2} grid points "
          f"(α × λ) on {len(split.test_users)} test users...\n")
    result = grid_search(split, base, grid)
    print(result.table())
    print(f"\nbest: {result.best.overrides} "
          f"(recall@10 = {result.best.score:.4f})")


if __name__ == "__main__":
    main()
