"""A traveller's live session: recommend → check in → update → recommend.

Run:
    python examples/traveller_session.py

Simulates serving: a crossing-city user receives recommendations,
"checks in" at two of their actual ground-truth POIs, the model folds
those events into the user's embedding online (no retraining), and the
refreshed ranking is compared against the first one.
"""

import numpy as np

from repro.core import Recommender, STTransRecConfig, STTransRecTrainer
from repro.core.online import OnlineUserUpdater
from repro.data import foursquare_like, generate_dataset, make_crossing_city_split


def show(label, ranked, truth):
    print(f"{label}:")
    for i, (poi_id, score) in enumerate(ranked, start=1):
        marker = " *" if poi_id in truth else ""
        print(f"  {i}. POI {poi_id:>4}  score={score:.3f}{marker}")


def main() -> None:
    config = foursquare_like(scale=0.5)
    dataset, _ = generate_dataset(config)
    split = make_crossing_city_split(dataset, config.target_city)

    print("Training ST-TransRec...")
    trainer = STTransRecTrainer(split, STTransRecConfig(
        embedding_dim=32, epochs=8, weight_decay=3e-4, dropout=0.3,
        pretrain_epochs=15, seed=0,
    ))
    trainer.fit()
    recommender = Recommender(trainer.model, trainer.index, split.train,
                              split.target_city)

    # Pick a traveller with several ground-truth visits.
    user = max(split.test_users,
               key=lambda u: len(split.ground_truth.get(u, ())))
    truth = split.ground_truth[user]
    print(f"\nTraveller #{user} (will actually visit "
          f"{len(truth)} POIs: {sorted(truth)})\n")

    before = recommender.recommend(user, k=8)
    show("Initial top-8", before, truth)

    # The traveller checks in at two of their true POIs.
    observed = sorted(truth)[:2]
    print(f"\n>>> traveller checks in at POIs {observed}; folding in...\n")
    catalogue = [p.poi_id
                 for p in split.train.pois_in_city(split.target_city)]
    updater = OnlineUserUpdater(trainer.model, trainer.index,
                                learning_rate=0.05, steps=30, rng=0)
    updater.update(user, observed, catalogue)

    after = recommender.recommend(user, k=8)
    show("Refreshed top-8", after, truth)

    remaining = truth - set(observed)
    def hits(ranked):
        return sum(1 for poi_id, _ in ranked if poi_id in remaining)
    print(f"\nRemaining ground-truth POIs in top-8: "
          f"{hits(before)} before -> {hits(after)} after the fold-in")


if __name__ == "__main__":
    main()
