"""Region segmentation and density-based resampling, visualized in ASCII.

Run:
    python examples/region_segmentation_demo.py

Demonstrates the spatial substrate on the target city of a synthetic
dataset: the grid, Algorithm 1's uniformly accessible regions, each
region's check-in density, the Eq. 6 deficits, and how the resampler
(Eq. 9) rebalances the distribution over regions.
"""

import numpy as np

from repro.data import foursquare_like, generate_dataset, make_crossing_city_split
from repro.spatial import (
    CityGrid,
    DensityResampler,
    build_density_model,
    empirical_poi_sample,
    segment_city,
)


def ascii_map(grid, segmentation) -> str:
    """Render the grid with one letter per region."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    rows = []
    for r in range(grid.shape[0]):
        row = []
        for c in range(grid.shape[1]):
            region = segmentation.region_of_cell.get((r, c))
            row.append(letters[region % 26] if region is not None else ".")
        rows.append(" ".join(row))
    return "\n".join(rows)


def region_histogram(segmentation, poi_ids) -> np.ndarray:
    counts = np.zeros(segmentation.num_regions)
    for poi in poi_ids:
        counts[segmentation.region_of_poi[int(poi)]] += 1
    return counts / counts.sum()


def main() -> None:
    config = foursquare_like(scale=0.6)
    dataset, _ = generate_dataset(config)
    split = make_crossing_city_split(dataset, config.target_city)
    city = config.target_city

    pois = split.train.pois_in_city(city)
    grid = CityGrid(pois, shape=(9, 9))
    segmentation = segment_city(split.train, grid, threshold=0.10)

    print(f"City: {city} — {len(pois)} POIs on a {grid.shape} grid")
    print(f"Algorithm 1 found {segmentation.num_regions} uniformly "
          f"accessible regions (δ = 0.10):\n")
    print(ascii_map(grid, segmentation))

    density = build_density_model(split.train, segmentation)
    print("\nRegion densities (check-ins per cell) and Eq. 6 deficits:")
    for region in segmentation.regions:
        print(f"  region {region.region_id}: cells={region.num_cells:<3} "
              f"check-ins={region.num_checkins:<5} "
              f"density={region.density():6.1f}  "
              f"deficit={density.deficit(region.region_id)}")

    resampler = DensityResampler(density, alpha=0.10, rng=0)
    plan = resampler.plan()
    print(f"\nResampling at α = 0.10: total deficit "
          f"{plan.total_deficit} → {plan.num_draws} synthetic draws")

    raw = empirical_poi_sample(density, 3000, rng=0)
    balanced = resampler.balanced_poi_sample(3000)
    print("\nDistribution over regions (fraction of samples):")
    print(f"  {'region':<8}{'raw check-ins':<16}{'balanced (Eq. 9)'}")
    raw_hist = region_histogram(segmentation, raw)
    bal_hist = region_histogram(segmentation, balanced)
    for region_id in range(segmentation.num_regions):
        print(f"  {region_id:<8}{raw_hist[region_id]:<16.3f}"
              f"{bal_hist[region_id]:.3f}")
    print("\nThe balanced sampler lifts sparse regions, which is what "
          "lets the MMD transfer layer match POIs across cities without "
          "a dense-region bias.")


if __name__ == "__main__":
    main()
