"""Quickstart: generate data, train ST-TransRec, recommend, evaluate.

Run:
    python examples/quickstart.py

(CI runs it with ``--scale 0.15 --epochs 2 --pretrain-epochs 1
--embedding-dim 8`` as a smoke test; defaults reproduce the walkthrough
below.)

Walks the full pipeline in under a minute on one CPU core:
1. synthesize a Foursquare-like multi-city check-in dataset,
2. hold out the crossing-city users' Los Angeles check-ins,
3. train ST-TransRec (text + MMD transfer + density resampling),
4. print top-5 recommendations for one traveller,
5. score the model with the paper's ranking protocol.
"""

import argparse

from repro.core import Recommender, STTransRecConfig, STTransRecTrainer
from repro.data import foursquare_like, generate_dataset, make_crossing_city_split
from repro.data.stats import dataset_statistics
from repro.eval import RankingEvaluator


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4,
                        help="dataset scale factor (default 0.4)")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--pretrain-epochs", type=int, default=10)
    parser.add_argument("--embedding-dim", type=int, default=32)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    # 1. Data: a scaled-down Foursquare-like world (4 cities, LA target).
    config = foursquare_like(scale=args.scale)
    dataset, _truth = generate_dataset(config)
    stats = dataset_statistics(dataset, config.target_city)
    print("Dataset:")
    for label, value in stats.rows():
        print(f"  {label:<22}{value}")

    # 2. Crossing-city split: travellers' LA check-ins become test data.
    split = make_crossing_city_split(dataset, config.target_city)
    print(f"\nTest users: {len(split.test_users)}, "
          f"held-out check-ins: {split.num_test_checkins}")

    # 3. Train the full model.
    model_config = STTransRecConfig(
        embedding_dim=args.embedding_dim,
        epochs=args.epochs,
        weight_decay=3e-4,
        dropout=0.3,
        pretrain_epochs=args.pretrain_epochs,
        seed=0,
    )
    trainer = STTransRecTrainer(split, model_config)
    result = trainer.fit()
    print(f"\nTrained {result.epochs} epochs; "
          f"final joint loss {result.final_loss:.3f}")

    # 4. Recommend for one traveller.
    recommender = Recommender(trainer.model, trainer.index, split.train,
                              split.target_city)
    user = split.test_users[0]
    print(f"\nTraveller #{user} liked: "
          f"{', '.join(recommender.user_top_words(user, k=6))}")
    print("Top-5 POIs in Los Angeles:")
    truth = split.ground_truth[user]
    for poi_id, score in recommender.recommend(user, k=5):
        words = ", ".join(dataset.pois[poi_id].words[:4])
        marker = "  <-- actually visited!" if poi_id in truth else ""
        print(f"  POI {poi_id:>4}  score={score:.3f}  [{words}]{marker}")

    # 5. Evaluate with the paper's 100-sampled-negative protocol.
    evaluator = RankingEvaluator(split, seed=42)
    scores = evaluator.evaluate(recommender)
    print(f"\nRanking metrics over {scores.num_users} test users:")
    print(scores.table())


if __name__ == "__main__":
    main()
